"""The in-process :class:`QueryService`: asyncio micro-batching front-end.

The paper's deployment story (and the companion outsourced-identification
work, Wang & Qian arXiv:1603.02613) is a long-lived classifier *service*
fielding a stream of packet-behavior queries while the data plane churns
underneath it.  This module is that serving layer:

* **Adaptive micro-batching.**  Concurrent ``classify``/``query`` calls
  land in one admission queue; a single dispatcher coalesces them --
  up to ``max_batch`` requests or a ``max_delay_s`` latency budget,
  whichever closes first -- into one
  :meth:`~repro.core.classifier.APClassifier.classify_batch` call, so
  the compiled engine's bit-parallel path is amortized across requests
  that arrived independently.
* **Bounded admission with selectable saturation policy.**  The queue
  holds at most ``queue_limit`` requests.  ``overflow="wait"`` applies
  backpressure (callers suspend until a slot frees -- closed-loop
  clients slow down); ``overflow="shed"`` fails fast with
  :class:`QueryShed` (open-loop load peaks are dropped and counted
  instead of growing the queue without bound).
* **Hot-header result cache** (optional, ``cache_size > 0``).  Skewed
  query streams repeat a small set of headers; a generation-keyed LRU
  (:mod:`repro.serve.cache`) answers repeats synchronously at admission
  -- one dict probe instead of a future + queue + dispatcher round-trip
  -- and is invalidated inside every mutation's write-lock section, so
  a swap can never serve a pre-swap atom id.
* **Single-flight request coalescing.**  A ``classify`` for a header
  that is already queued does not take a second queue slot: it awaits
  the in-flight request's future and both callers share one
  classification.  Without this, concurrent callers replaying a shared
  trace *platoon* after every cache invalidation -- whole batches carry
  one distinct header, every probe misses because the put lands after
  all of them -- and the cache never refills.  Coalescing collapses
  each platoon to one batch slot and one cache insert.
* **Per-request timeouts.**  A request that misses its deadline raises
  :class:`asyncio.TimeoutError` in the caller.  Behavior queries own
  their future, so the timeout cancels it and the dispatcher skips the
  work; classify futures may be shared by coalesced waiters, so the
  request runs to completion (seeding the result cache) and only the
  impatient caller sees the timeout.
* **Graceful degradation during updates** (Section VI-B's
  query-process/reconstruction-process split).  Rule updates stale the
  compiled artifact; queries keep flowing through the interpreted-tree
  fallback (still exact, just slower).  :meth:`QueryService.reconstruct`
  rebuilds the universe and tree in a background executor thread --
  against a *private* BDD manager, so the rebuild never races the
  canonical manager the loop thread keeps updating -- while the
  dispatcher keeps serving, journals updates that arrive mid-rebuild,
  replays them onto the staged structures, and swaps behind a
  *reader-preferring* lock -- queries are never blocked by a waiting
  swap; the swap slips into the next gap between batches.

Every counter (batch-size histogram, queue depth high-water mark, sheds,
timeouts, p50/p99 service latency, swaps) lands in
:class:`repro.obs.ServeCounters` -- either a private instance or the
``serve`` section of a shared :class:`repro.obs.Recorder` snapshot.
"""

from __future__ import annotations

import asyncio
import random
import time
from collections import deque
from contextlib import asynccontextmanager
from typing import AsyncIterator

from ..bdd import BDDManager
from ..bdd.serialize import dump_functions, load_functions
from ..core.atomic import AtomicUniverse
from ..core.classifier import APClassifier
from ..core.construction import build_tree
from ..core.update import UpdateEngine
from ..headerspace.header import Packet
from ..network.dataplane import LabeledPredicate, PredicateChange
from ..network.rules import ForwardingRule
from ..obs import ServeCounters
from ..parallel.snapshot import (
    restore_tree,
    restore_universe,
    snapshot_tree,
    snapshot_universe,
)
from .cache import ResultCache

try:  # pragma: no cover - exercised via the CI matrix
    from .. import config as _config

    if _config.numpy_disabled():
        _np = None
    else:
        import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["QueryService", "QueryShed", "ServiceClosed"]

#: Sentinel distinguishing "no timeout argument" from "timeout=None".
_UNSET = object()

#: Cache hits answer without suspending; yield to the event loop after
#: this many consecutive synchronous hits so hot-header callers cannot
#: starve the dispatcher (or anything else scheduled on the loop).
_HIT_YIELD_EVERY = 256


class QueryShed(Exception):
    """Request dropped at admission: the queue is saturated and the
    service runs the ``overflow="shed"`` policy."""


class ServiceClosed(Exception):
    """The service is not running (never started, or stopped)."""


class _Request:
    """One admitted query waiting for a dispatch slot."""

    __slots__ = ("header", "future", "ingress", "in_port", "admitted_at")

    def __init__(
        self,
        header: int,
        future: asyncio.Future,
        ingress: str | None,
        in_port: str | None,
        admitted_at: float,
    ) -> None:
        self.header = header
        self.future = future
        self.ingress = ingress
        self.in_port = in_port
        self.admitted_at = admitted_at


class _SwapLock:
    """Reader-preferring read/write lock for the serving event loop.

    Readers (dispatcher batches) only wait while a writer *holds* the
    lock, never for a writer that is merely waiting -- so queries keep
    flowing while a reconstruction swap looks for a gap.  Writers
    (updates, swaps) wait until no reader and no writer is active.
    Writer starvation is accepted by design: batches are short (one
    ``classify_batch`` call), so gaps occur at every batch boundary.
    """

    def __init__(self) -> None:
        self._readers = 0
        self._writing = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._no_writer = asyncio.Event()
        self._no_writer.set()

    @asynccontextmanager
    async def read(self) -> AsyncIterator[None]:
        while self._writing:
            await self._no_writer.wait()
        self._readers += 1
        self._idle.clear()
        try:
            yield
        finally:
            self._readers -= 1
            if self._readers == 0 and not self._writing:
                self._idle.set()

    @asynccontextmanager
    async def write(self) -> AsyncIterator[None]:
        while self._writing or self._readers:
            await self._idle.wait()
        self._writing = True
        self._idle.clear()
        self._no_writer.clear()
        try:
            yield
        finally:
            self._writing = False
            self._no_writer.set()
            if self._readers == 0:
                self._idle.set()


class QueryService:
    """Serve classify/behavior queries over one :class:`APClassifier`.

    Use as an async context manager, or call :meth:`start`/:meth:`stop`::

        classifier = APClassifier.build(network)
        async with QueryService(classifier) as service:
            atom = await service.classify(packet)
            behavior = await service.query(packet, ingress_box="SEAT")

    Parameters:

    ``max_batch``
        Most requests coalesced into one ``classify_batch`` call.
    ``max_delay_s``
        Longest the dispatcher waits for more requests after the first
        one arrives -- the batching latency budget.  ``0`` dispatches
        whatever is queued immediately (no added latency, smaller
        batches).
    ``queue_limit``
        Admission-queue bound; with ``overflow="wait"`` it is the
        backpressure threshold, with ``"shed"`` the drop threshold.
    ``timeout_s``
        Default per-request deadline (``None``: wait forever).  Each
        request may override it.
    ``recorder``
        Optional :class:`repro.obs.Recorder`; the service then feeds the
        ``serve`` section of its snapshots.  Without one, a private
        :class:`~repro.obs.ServeCounters` is kept (see :meth:`metrics`).
    ``autocompile``
        Compile the classifier's flat-array artifact at :meth:`start`
        and re-compile at each reconstruction swap (recommended; the
        batch path is what micro-batching amortizes).
    ``recompile_after_updates``
        If set, recompile inline once this many updates have staled the
        artifact, instead of waiting for the next reconstruction.
    ``cache_size``
        Capacity of the hot-header result cache (``0``, the default,
        disables it).  A cached header's atom id is answered
        *synchronously at admission* -- no future, no queue slot, no
        dispatcher pass -- which is where the throughput win on skewed
        workloads comes from.  The cache is generation-keyed: rule
        updates, reconstruction swaps, :meth:`adopt_generation`, and
        any observed out-of-band tree change invalidate it before the
        next probe, so a swap can never serve a pre-swap atom id.
        Behavior queries (:meth:`query`) bypass the cache; only atom-id
        classifies are cached.
    ``maintenance``
        Update-maintenance mode for the owned classifier (see
        :attr:`APClassifier.MAINTENANCE_MODES`).  ``"incremental"``
        keeps the atom partition minimal under rule churn and patches
        the compiled artifact in place, so the batch fast path stays
        hot through update storms instead of sliding into the
        interpreted staleness fallback; the result cache still turns
        over its generation on every mutation (the tree version bumps
        per update), so a patched artifact can never serve a stale
        atom id from cache.
    """

    OVERFLOW_POLICIES = ("wait", "shed")

    def __init__(
        self,
        classifier: APClassifier,
        *,
        max_batch: int = 128,
        max_delay_s: float = 0.001,
        queue_limit: int = 1024,
        overflow: str = "wait",
        timeout_s: float | None = None,
        recorder=None,
        autocompile: bool = True,
        backend: str | None = None,
        recompile_after_updates: int | None = None,
        cache_size: int = 0,
        maintenance: str | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if max_delay_s < 0:
            raise ValueError("max_delay_s must be >= 0")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if overflow not in self.OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {overflow!r}; "
                f"choose from {self.OVERFLOW_POLICIES}"
            )
        if recompile_after_updates is not None and recompile_after_updates < 1:
            raise ValueError("recompile_after_updates must be >= 1")
        if maintenance is not None:
            classifier.set_maintenance(maintenance)
        self.maintenance = classifier.maintenance
        self.classifier = classifier
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.queue_limit = queue_limit
        self.overflow = overflow
        self.timeout_s = timeout_s
        self.recorder = recorder
        self.autocompile = autocompile
        self.backend = backend
        self.recompile_after_updates = recompile_after_updates
        self.cache_size = cache_size
        self.counters: ServeCounters = (
            recorder.serve if recorder is not None else ServeCounters()
        )
        self._queue: deque[_Request] = deque()
        # Admission slots, hand-rolled instead of asyncio.Semaphore: the
        # uncontended path must stay synchronous (no coroutine hop), and
        # the dispatcher releases a whole batch in one call.
        self._free = queue_limit
        self._slot_waiters: deque[asyncio.Future] = deque()
        self._wakeup = asyncio.Event()
        self._swap_lock = _SwapLock()
        self._dispatcher: asyncio.Task | None = None
        self._journal: list[PredicateChange] | None = None
        self._reconstructing = False
        self._updates_since_compile = 0
        # Hot-header result cache (tentpole 3).  All cache state is
        # confined to the event-loop thread; the freshness stamp below
        # detects out-of-band tree changes (the staleness-fallback case)
        # so even mutations that bypassed this service invalidate.
        self._cache = (
            ResultCache(cache_size, counters=self.counters)
            if cache_size
            else None
        )
        self._cache_tree = None
        self._cache_tree_version = -1
        self._hit_streak = 0  # synchronous hits since the last loop yield
        self._batch_out = None  # reusable int64 buffer for the array path
        # Single-flight registry: header -> the future of the queued
        # classify request for it.  Confined to the event-loop thread;
        # entries are removed wherever their future is completed.
        self._inflight: dict[int, asyncio.Future] = {}
        # Serialized live generation for diff/what-if isolation, keyed
        # by the serving tree's identity + version (same freshness stamp
        # as the result cache).  Confined to the event-loop thread.
        self._snapshot_cache: tuple[object, int, str] | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._dispatcher is not None and not self._dispatcher.done()

    async def start(self) -> None:
        """Compile (if ``autocompile``) and start the dispatcher task."""
        if self.running:
            return
        if self.autocompile and not self.classifier.compiled_fresh:
            self.classifier.compile(self.backend)
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop(), name="repro-serve-dispatch"
        )

    async def stop(self) -> None:
        """Cancel the dispatcher and fail every pending request.

        Idempotent; pending callers see :class:`ServiceClosed`.
        """
        dispatcher = self._dispatcher
        self._dispatcher = None
        if dispatcher is not None:
            dispatcher.cancel()
            try:
                await dispatcher
            except asyncio.CancelledError:
                pass
        drained = 0
        while self._queue:
            request = self._queue.popleft()
            drained += 1
            self._retire_inflight(request)
            if not request.future.done():
                request.future.set_exception(ServiceClosed("service stopped"))
        self._inflight.clear()
        # Freed slots wake admission waiters, which observe the stopped
        # service, re-release, and raise -- the wakeup cascades until
        # every waiter has drained.
        self._release_slots(drained)

    async def __aenter__(self) -> "QueryService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------

    async def classify(self, packet: Packet | int, *, timeout=_UNSET) -> int:
        """Stage 1 through the batching front-end: the packet's atom id."""
        header = packet.value if isinstance(packet, Packet) else packet
        return await self._submit(header, None, None, timeout)

    async def query(
        self,
        packet: Packet | int,
        ingress_box: str,
        in_port: str | None = None,
        *,
        timeout=_UNSET,
    ):
        """Both stages: the packet's network-wide :class:`Behavior`.

        Stage 2 runs inside the same swap-lock section as stage 1, so
        the atom id and the behavior computer always belong to the same
        classifier generation even when a reconstruction swap races the
        request.
        """
        header = packet.value if isinstance(packet, Packet) else packet
        return await self._submit(header, ingress_box, in_port, timeout)

    async def classify_frame(self, headers) -> list[int]:
        """Stage 1 for a pre-batched frame, bypassing the coalescing queue.

        The framed protocol (:mod:`repro.serve.proto`) already delivers
        whole batches, so there is nothing to coalesce and no per-item
        future to allocate: the frame runs under one read section of
        the swap lock exactly like a dispatcher batch -- every answer
        comes from a single classifier generation -- and is accounted
        as one served frame of ``len(headers)`` requests.  ``headers``
        may be a list of packed ints or (under numpy) a ``uint64`` word
        array straight off the wire, which reaches the array kernel
        with zero per-header Python work.
        """
        dispatcher = self._dispatcher
        if dispatcher is None or dispatcher.done():
            raise ServiceClosed("service is not running")
        started = time.perf_counter()
        async with self._swap_lock.read():
            if _np is None:
                atoms = self.classifier.classify_batch(list(headers))
            else:
                n = len(headers)
                out = self._batch_out
                if out is None or out.shape[0] < n:
                    out = self._batch_out = _np.empty(
                        max(self.max_batch, n), dtype=_np.int64
                    )
                atoms = self.classifier.classify_batch_array(
                    headers, out=out[:n]
                ).tolist()
        self.counters.record_frame(len(atoms), time.perf_counter() - started)
        return atoms

    async def _submit(
        self, header: int, ingress: str | None, in_port: str | None, timeout
    ):
        dispatcher = self._dispatcher
        if dispatcher is None or dispatcher.done():
            raise ServiceClosed("service is not running")
        counters = self.counters
        if ingress is None:
            if self._cache is not None:
                # Synchronous hot-header hit: no future, no queue slot,
                # no dispatcher pass.  Safe without the swap lock
                # because every invalidation runs synchronously on this
                # same loop thread inside the writer's critical section
                # -- a probe either happens-before the mutation (and
                # the answer linearizes before it) or sees the
                # already-cleared cache.
                self._check_cache_generation()
                atom_id = self._cache.get(header)
                if atom_id is not None:
                    counters.requests += 1
                    counters.record_served(0.0)
                    # A hit suspends nowhere, so a caller looping over
                    # hot headers would never hand the event loop back
                    # -- the dispatcher, updates, and every other task
                    # would starve.  Yield once per streak of hits to
                    # bound that.
                    self._hit_streak += 1
                    if self._hit_streak >= _HIT_YIELD_EVERY:
                        self._hit_streak = 0
                        await asyncio.sleep(0)
                    return atom_id
            while True:
                shared = self._inflight.get(header)
                if shared is None:
                    break
                # Single-flight: an identical classify is already
                # queued.  Wait on its future instead of spending a
                # queue slot and a batch lane on a duplicate.  The wait
                # is shielded, so this caller's timeout cannot cancel
                # the leader's future; if the *leader's* caller timed
                # out (its ``wait_for`` cancels the shared future), the
                # request died unanswered -- loop and resubmit.
                counters.requests += 1
                counters.cache_coalesced += 1
                started = time.perf_counter()
                try:
                    result = await self._await_shared(shared, timeout)
                except asyncio.CancelledError:
                    if not shared.cancelled():
                        raise  # this caller was cancelled, not the leader
                    continue
                counters.record_served(time.perf_counter() - started)
                return result
        if self._free > 0:
            self._free -= 1  # uncontended admission: no await
        elif self.overflow == "shed":
            counters.shed += 1
            raise QueryShed(
                f"admission queue at limit ({self.queue_limit}); "
                f"request shed"
            )
        else:
            await self._wait_for_slot()  # backpressure in "wait" mode
            if not self.running:
                self._release_slots(1)
                raise ServiceClosed("service stopped during admission")
        future = asyncio.get_running_loop().create_future()
        request = _Request(header, future, ingress, in_port, time.perf_counter())
        self._queue.append(request)
        counters.record_admission(len(self._queue))
        self._wakeup.set()
        if ingress is None:
            # Register as the single-flight leader for this header.  The
            # leader waits on its own future directly (the hot path adds
            # nothing over the pre-coalescing code); followers shield
            # themselves, so only a *leader* timeout cancels the future
            # -- followers detect that cancellation and resubmit.
            self._inflight[header] = future
        if timeout is _UNSET:
            timeout = self.timeout_s
        try:
            if timeout is None:
                result = await future
            else:
                result = await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            counters.timeouts += 1
            # The timed-out wait cancelled the future: unregister it so
            # coalesced waiters resubmit instead of spinning on a dead
            # future (no-op for behavior queries).
            self._retire_inflight(request)
            raise
        except asyncio.CancelledError:
            self._retire_inflight(request)
            raise
        counters.record_served(time.perf_counter() - request.admitted_at)
        return result

    async def _await_shared(self, future: asyncio.Future, timeout):
        """Wait on a (possibly shared) single-flight classify future.

        ``shield`` keeps one caller's timeout or cancellation from
        cancelling the future under every other coalesced waiter: the
        queued request runs to completion and still seeds the result
        cache; only the impatient caller raises.
        """
        if timeout is _UNSET:
            timeout = self.timeout_s
        try:
            if timeout is None:
                return await asyncio.shield(future)
            return await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            self.counters.timeouts += 1
            raise

    async def _wait_for_slot(self) -> None:
        """Suspend until an admission slot frees (``wait`` overflow)."""
        loop = asyncio.get_running_loop()
        while self._free <= 0:
            waiter = loop.create_future()
            self._slot_waiters.append(waiter)
            try:
                await waiter
            except asyncio.CancelledError:
                # A wakeup may have raced the cancellation; hand it on.
                if waiter.done() and not waiter.cancelled():
                    self._wake_slot_waiters()
                raise
        self._free -= 1

    def _release_slots(self, count: int) -> None:
        if count:
            self._free += count
            self._wake_slot_waiters()

    def _wake_slot_waiters(self) -> None:
        # Waiters re-check the slot count on wakeup, so waking at most
        # ``_free`` of them is enough and spurious wakeups are harmless.
        available = self._free
        waiters = self._slot_waiters
        while available > 0 and waiters:
            waiter = waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                available -= 1

    async def _dispatch_loop(self) -> None:
        queue = self._queue
        loop = asyncio.get_running_loop()
        while True:
            if not queue:
                self._wakeup.clear()
                await self._wakeup.wait()
            # Coalescing window: after the first request, wait up to
            # max_delay_s (or until max_batch are queued) for company.
            # Already-runnable submitters are drained with plain yields
            # (one event-loop pass each); the timed wait only runs once
            # arrivals pause, so a filling queue costs no timers.
            if self.max_delay_s > 0 and len(queue) < self.max_batch:
                deadline = loop.time() + self.max_delay_s
                while len(queue) < self.max_batch:
                    size = len(queue)
                    await asyncio.sleep(0)
                    if len(queue) != size:
                        continue
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    self._wakeup.clear()
                    try:
                        await asyncio.wait_for(self._wakeup.wait(), remaining)
                    except asyncio.TimeoutError:
                        break
            elif len(queue) < self.max_batch:
                # No latency budget: still take one free event-loop pass
                # so submitters that are already scheduled join the batch.
                await asyncio.sleep(0)
            batch: list[_Request] = []
            while queue and len(batch) < self.max_batch:
                batch.append(queue.popleft())
            self._release_slots(len(batch))
            # Requests whose leader timed out (or was cancelled) carry a
            # cancelled future; drop them so they cost no work.  Their
            # single-flight entries were retired by the leader, but
            # retire again here as a backstop so coalesced waiters can
            # never be left probing a dead future.
            live = []
            for req in batch:
                if req.future.cancelled():
                    self._retire_inflight(req)
                else:
                    live.append(req)
            if not live:
                continue
            self.counters.record_batch(len(live))
            try:
                async with self._swap_lock.read():
                    self._serve_batch(live)
            except asyncio.CancelledError:
                # stop() can cancel us while this batch waits for a
                # writer to release the swap lock.  Its requests already
                # left the queue, so stop()'s drain cannot see them --
                # fail them here or callers with no timeout hang forever.
                for request in live:
                    self._retire_inflight(request)
                    if not request.future.done():
                        request.future.set_exception(
                            ServiceClosed("service stopped")
                        )
                raise

    def _serve_batch(self, live: list[_Request]) -> None:
        """Classify one coalesced batch and resolve its futures.

        Runs synchronously under the read side of the swap lock: both
        stages see a single classifier generation.
        """
        classifier = self.classifier
        headers = [request.header for request in live]
        try:
            atom_ids = self._classify_headers(classifier, headers)
        except Exception as exc:  # defensive: keep the dispatcher alive
            for request in live:
                self._retire_inflight(request)
                if not request.future.done():
                    request.future.set_exception(exc)
            return
        cache = self._cache
        if cache is not None:
            # Re-stamp before populating: if the batch was answered by
            # the interpreted staleness fallback after an out-of-band
            # tree change, the old generation dies here and the new
            # results seed the next one.
            self._check_cache_generation()
        for request, atom_id in zip(live, atom_ids):
            self._retire_inflight(request)
            if cache is not None and request.ingress is None:
                cache.put(request.header, atom_id)
            if request.future.done():
                continue
            if request.ingress is None:
                request.future.set_result(atom_id)
                continue
            try:
                behavior = classifier.behavior_of_atom(
                    atom_id, request.ingress, request.in_port
                )
            except Exception as exc:
                request.future.set_exception(exc)
            else:
                request.future.set_result(behavior)

    def _classify_headers(self, classifier: APClassifier, headers: list[int]):
        """One batched stage-1 call, through the array kernel when possible.

        With numpy present the batch goes arrays end-to-end into a
        service-owned reusable ``int64`` output buffer (no per-batch
        result allocation); ``tolist`` at the end keeps the futures'
        results plain Python ints (JSON-safe for the TCP front-end).
        """
        if _np is None:
            return classifier.classify_batch(headers)
        n = len(headers)
        out = self._batch_out
        if out is None or out.shape[0] < n:
            out = self._batch_out = _np.empty(
                max(self.max_batch, n), dtype=_np.int64
            )
        return classifier.classify_batch_array(headers, out=out[:n]).tolist()

    # ------------------------------------------------------------------
    # Result cache (generation keying)
    # ------------------------------------------------------------------

    def _check_cache_generation(self) -> None:
        """Invalidate the cache if the serving tree changed under us.

        The supported mutation paths (:meth:`_apply_rule`,
        :meth:`adopt_generation`, :meth:`reconstruct`) invalidate
        eagerly; this stamp check is the backstop for out-of-band
        mutations -- anything that would send queries down the
        staleness fallback -- observed via the tree's identity and
        version counter.  Runs on the loop thread with no awaits
        between check and use.
        """
        tree = self.classifier.tree
        if tree is self._cache_tree and tree.version == self._cache_tree_version:
            return
        if self._cache_tree is not None:
            self._cache.invalidate()
        self._cache_tree = tree
        self._cache_tree_version = tree.version

    def _retire_inflight(self, request: "_Request") -> None:
        """Drop the request's single-flight registration.

        Runs wherever the request's future is completed, on the loop
        thread with no awaits before the future resolves, so a new
        leader for the same header can only register after every
        coalesced waiter's answer is already determined.  The identity
        check guards teardown paths that may complete a future twice.
        """
        if request.ingress is not None:
            return
        if self._inflight.get(request.header) is request.future:
            del self._inflight[request.header]

    def _invalidate_cache(self) -> None:
        """Eager invalidation at a supported mutation point."""
        cache = self._cache
        if cache is None:
            return
        cache.invalidate()
        tree = self.classifier.tree
        self._cache_tree = tree
        self._cache_tree_version = tree.version

    # ------------------------------------------------------------------
    # Update path (write side of the swap lock)
    # ------------------------------------------------------------------

    async def insert_rule(self, box: str, rule: ForwardingRule):
        """Install a forwarding rule; queries degrade to the interpreted
        fallback until the next recompile or reconstruction swap."""
        return await self._apply_rule(box, rule, insert=True)

    async def remove_rule(self, box: str, rule: ForwardingRule):
        """Remove a forwarding rule (tombstone semantics, Section VI-A)."""
        return await self._apply_rule(box, rule, insert=False)

    async def _apply_rule(self, box: str, rule: ForwardingRule, insert: bool):
        classifier = self.classifier
        async with self._swap_lock.write():
            if insert:
                changes = classifier.dataplane.insert_rule(box, rule)
            else:
                changes = classifier.dataplane.remove_rule(box, rule)
            results = classifier.apply_changes(changes)
            if self._journal is not None:
                self._journal.extend(changes)
            if changes:
                self._invalidate_cache()
                # Incremental maintenance patches the artifact in place,
                # so it usually stays fresh through the update -- only
                # updates that actually staled it count toward the
                # recompile threshold.
                if not classifier.compiled_fresh:
                    self._updates_since_compile += len(changes)
                    if (
                        self.recompile_after_updates is not None
                        and self._updates_since_compile
                        >= self.recompile_after_updates
                    ):
                        self._compile_now()
        return results

    async def recompile(self) -> None:
        """Refresh the compiled artifact against the live tree now."""
        async with self._swap_lock.write():
            self._compile_now()

    async def adopt_generation(self, classifier: APClassifier) -> None:
        """Swap in a whole replacement classifier (generation handoff).

        The multi-worker serve pool publishes each new artifact
        generation by restoring it from shared memory and handing the
        result here; single-process callers can use it the same way
        after :func:`repro.persist.load`.  The swap takes the write side
        of the swap lock, so in-flight batches finish on the old
        generation and the next batch sees the new one -- never a mix.
        """
        async with self._swap_lock.write():
            classifier.set_maintenance(self.maintenance)
            if self.autocompile and not classifier.compiled_fresh:
                classifier.compile(self.backend)
            if self.recorder is not None:
                classifier.set_recorder(self.recorder)
            self.classifier = classifier
            self._invalidate_cache()
            self._updates_since_compile = 0
            self.counters.swaps += 1
            self.counters.generations += 1

    def _compile_now(self) -> None:
        self.classifier.compile(self.backend)
        self._updates_since_compile = 0

    # ------------------------------------------------------------------
    # Verification queries: generation diff and what-if (repro.diff)
    # ------------------------------------------------------------------

    def _live_snapshot_json(self) -> str:
        """Serialize the live generation, cached per tree version.

        Must run under a read section of the swap lock on the loop
        thread: the snapshot is the consistency point -- everything
        downstream of it (artifact loads, shadow forks, BDD sweeps)
        works on private managers in an executor thread and can never
        see a half-applied update.  Repeated diff/what-if calls at the
        same generation reuse the cached text, so only the first call
        after a mutation pays the serialization.
        """
        from .. import persist

        tree = self.classifier.tree
        cached = self._snapshot_cache
        if cached is not None and cached[0] is tree and cached[1] == tree.version:
            return cached[2]
        text = persist.classifier_to_json(self.classifier)
        self._snapshot_cache = (tree, tree.version, text)
        return text

    async def diff_generation(
        self,
        other: "APClassifier | str",
        ingress_box: str,
        *,
        limit: int | None = None,
    ) -> dict:
        """Diff the live generation against another one (strict JSON).

        ``other`` is a loaded :class:`APClassifier` or a path to a saved
        artifact/snapshot.  The live side is snapshotted under the swap
        lock (one consistent generation) and the sweep runs on a private
        replica in the default executor, so serving latency sees only
        the snapshot cost -- never the BDD intersections.
        """
        if not self.running:
            raise ServiceClosed("service is not running")
        async with self._swap_lock.read():
            snapshot = self._live_snapshot_json()
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, self._diff_worker, snapshot, other, ingress_box, limit
        )

    def _diff_worker(
        self, snapshot: str, other, ingress_box: str, limit: int | None
    ) -> dict:
        """Executor-thread half of :meth:`diff_generation`."""
        from .. import persist
        from ..diff import diff_generations

        live = persist.classifier_from_json(snapshot)
        after = (
            other
            if isinstance(other, APClassifier)
            else persist.load(other)
        )
        report = diff_generations(
            live, after, ingress_box, recorder=self.recorder
        )
        return report.to_json(limit)

    async def what_if(
        self,
        ingress_box: str,
        *,
        add: list = (),
        remove: list = (),
        limit: int | None = None,
    ) -> dict:
        """Answer a what-if rule-change query (strict JSON).

        ``add``/``remove`` entries are ``(box, rule)`` pairs or rule
        spec strings (:func:`repro.diff.parse_rule_spec`).  The
        candidate rules are applied to a *shadow* fork of the live
        snapshot through the incremental engine and diffed against it;
        the live classifier is never touched -- in-flight batches and
        subsequent updates proceed as if the query never happened.
        """
        if not self.running:
            raise ServiceClosed("service is not running")
        from ..diff import parse_rule_spec

        layout = self.classifier.dataplane.layout
        add = [
            parse_rule_spec(entry, layout) if isinstance(entry, str) else entry
            for entry in add
        ]
        remove = [
            parse_rule_spec(entry, layout) if isinstance(entry, str) else entry
            for entry in remove
        ]
        async with self._swap_lock.read():
            snapshot = self._live_snapshot_json()
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, self._what_if_worker, snapshot, add, remove, ingress_box, limit
        )

    def _what_if_worker(
        self, snapshot: str, add, remove, ingress_box: str, limit: int | None
    ) -> dict:
        """Executor-thread half of :meth:`what_if`."""
        from .. import persist
        from ..diff import what_if

        live = persist.classifier_from_json(snapshot)
        report = what_if(
            live,
            ingress_box,
            add=add,
            remove=remove,
            recorder=self.recorder,
        )
        return report.to_json(limit)

    # ------------------------------------------------------------------
    # Reconstruction (Section VI-B, served live)
    # ------------------------------------------------------------------

    @property
    def reconstructing(self) -> bool:
        return self._reconstructing

    async def reconstruct(self) -> None:
        """Rebuild universe + tree in the background, then swap.

        The heavy work (atomic predicates, tree construction) runs in a
        worker thread via the event loop's default executor, so the
        dispatcher keeps answering on the old structures -- on the stale
        compiled artifact if it is still fresh for the old tree, on the
        interpreted fallback otherwise.  Updates applied while the
        rebuild runs are journaled and replayed onto the staged
        structures before the swap (Fig. 8), so the swapped-in
        classifier is exact for the *current* data plane.

        The rebuild thread never touches the canonical
        :class:`~repro.bdd.BDDManager`: that manager keeps taking
        updates on the event-loop thread during the rebuild, and it has
        no internal locking.  Instead the predicate snapshot is
        serialized under the write lock, the thread recomputes in a
        private manager (the in-loop analogue of
        :class:`repro.parallel.ReconstructionProcess`, which isolates
        with a separate *process*), and the result is restored into the
        canonical manager back on the loop thread, under the write lock.
        """
        if self._reconstructing:
            raise RuntimeError("a reconstruction is already in flight")
        self._reconstructing = True
        try:
            classifier = self.classifier
            async with self._swap_lock.write():
                snapshot = classifier.dataplane.predicates()
                pids = [labeled.pid for labeled in snapshot]
                dumped = dump_functions([labeled.fn for labeled in snapshot])
                self._journal = []
            loop = asyncio.get_running_loop()
            payload = await loop.run_in_executor(
                None, self._rebuild, pids, dumped
            )
            async with self._swap_lock.write():
                manager = classifier.dataplane.manager
                universe = restore_universe(payload["universe"], manager)
                tree = restore_tree(payload["tree"], universe)
                journal = self._journal or []
                self._journal = None
                if journal:
                    staged = UpdateEngine(universe, tree)
                    for change in journal:
                        if (
                            change.removed is not None
                            and universe.has_predicate(change.removed.pid)
                        ):
                            staged.remove_predicate(change.removed.pid)
                        if (
                            change.added is not None
                            and not universe.has_predicate(change.added.pid)
                        ):
                            staged.add_predicate(change.added)
                    if self.recorder is not None:
                        self.recorder.updates.replayed += len(journal)
                classifier.install_rebuild(universe, tree)
                self._invalidate_cache()
                if self.autocompile:
                    self._compile_now()
                self.counters.swaps += 1
        finally:
            self._reconstructing = False
            self._journal = None

    def _rebuild(self, pids: list[int], dumped: str) -> dict:
        """Executor-thread half of :meth:`reconstruct` (CPU-heavy)."""
        return _rebuild_isolated(pids, dumped, self.classifier.strategy)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def metrics(self) -> dict:
        """Point-in-time service metrics (``/metrics``-style snapshot).

        The cumulative counters match the ``serve`` section of a
        :meth:`repro.obs.Recorder.snapshot`; instantaneous gauges
        (queue depth, running/degraded state) are added on top.
        """
        data = self.counters.summary()
        data["queue_depth"] = len(self._queue)
        data["running"] = self.running
        data["reconstructing"] = self._reconstructing
        data["compiled_fresh"] = self.classifier.compiled_fresh
        if self._cache is not None:
            data["result_cache"] = {
                **data["result_cache"],
                **self._cache.stats(),
            }
        return data

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        return (
            f"QueryService({state}, max_batch={self.max_batch}, "
            f"queue={len(self._queue)}/{self.queue_limit}, "
            f"overflow={self.overflow!r})"
        )


def _rebuild_isolated(pids: list[int], dumped: str, strategy: str) -> dict:
    """Recompute (universe, tree) from a serialized predicate snapshot.

    A module-level function on purpose: it receives only plain data and
    deserializes into a manager of its own, so running it on an executor
    thread can never race the canonical :class:`BDDManager` that the
    event loop keeps mutating.  Mirrors ``parallel.recon``'s worker loop,
    minus the process boundary.
    """
    functions = load_functions(dumped)
    manager = functions[0].manager if functions else BDDManager(1)
    labeled = [
        LabeledPredicate(pid, "forward", "rebuild", "rebuild", fn)
        for pid, fn in zip(pids, functions)
    ]
    universe = AtomicUniverse.compute(manager, labeled).renumber_canonical()
    tree = build_tree(universe, strategy=strategy, rng=random.Random(0)).tree
    return {
        "universe": snapshot_universe(universe),
        "tree": snapshot_tree(tree, universe),
    }
