"""Multi-node sharded serving: router, replica pool, and handoff.

One serving process holds the whole compiled classifier; this module
splits it across *N* shard backends along the AP Tree's own geometry.
A shallow prefix of the tree (:class:`~repro.core.compiled.TreePrefix`)
becomes the **router**: descending it maps a header to a *frontier*
subtree, the shard plan maps frontiers to shards, and each shard serves
a slice artifact holding only its subtrees' programs, flat-BDD nodes,
and ``R`` sets (:mod:`repro.artifact.shard`).  Sibling subtrees cover
disjoint header-space, so the split is exact: sharded answers are
bit-identical to the single-node classifier.

Topology (``--shards 2 --replicas 2``)::

    client -> front server -> ShardRouter --+--> shard 0 replica a
              (framed or JSON)              |      shard 0 replica b
                                            +--> shard 1 replica a
                                                 shard 1 replica b

* each shard is replicated ``R`` ways; every replica of a shard maps
  the *same* shared-memory slice blob.  The router keeps a persistent
  framed connection per replica and rotates across them; on a connect
  error, reset, or timeout it retries the next replica (fail-over);
* queries travel as :mod:`repro.serve.proto` frames -- one
  ``SHARD_CLASSIFY`` frame carries a whole routed sub-batch in the
  kernel's word-packed form, so a replica classifies straight off the
  wire bytes;
* generation handoff extends the multi-worker publish protocol
  cluster-wide: the parent writes every shard's new slice into fresh
  shared memory and sends ``prepare``; replicas attach, load, and ack
  while still answering the old generation; only after **every**
  replica acked does the router flip its routing tables -- a plain
  in-loop assignment, atomic with respect to batches -- and each
  ``SHARD_CLASSIFY`` frame carries the generation it was routed under,
  answered strictly from that generation.  Replicas keep the last two
  generations mapped until ``commit``, so in-flight frames tagged with
  the previous generation still answer and no batch ever mixes
  generations.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import time

from .. import config
from ..artifact import load_shard_buffer, make_shard_plan, shard_artifact_bytes
from ..obs.recorder import ServeCounters
from . import proto
from .workers import CONTROL_TIMEOUT_S, _Generation

try:  # pragma: no cover - exercised via the CI matrix
    if config.numpy_disabled():
        _np = None
    else:
        import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

if _np is not None:
    from ..core import kernel as _kernel
else:  # pragma: no cover
    _kernel = None

__all__ = [
    "ROUTER_TIMEOUT_S",
    "ShardCluster",
    "ShardRouter",
    "serve_front_forever",
    "start_front_server",
]

#: Per-attempt deadline for one routed sub-batch; a dead replica's
#: connection usually fails fast (ECONNREFUSED/RST), the timeout covers
#: the half-open case.
ROUTER_TIMEOUT_S = 15.0

#: Errors that mean "this replica, right now" rather than "this
#: request": the router resets the connection and fails over.
_RETRYABLE = (ConnectionError, OSError, asyncio.IncompleteReadError,
              asyncio.TimeoutError)


# ----------------------------------------------------------------------
# Replica process (one shard slice, framed protocol only)
# ----------------------------------------------------------------------


def _load_slice(shm_name: str, backend: str | None):
    """(generation-block, serving) restored from a shared-memory slice."""
    block = _Generation(shm_name)
    serving = load_shard_buffer(
        block.shm.buf, backend=backend, source=f"shm:{shm_name}"
    )
    return block, serving


async def _replica_connection(state: dict, reader, writer) -> None:
    """One framed client (normally the router) against this replica."""
    generations = state["generations"]
    try:
        while True:
            try:
                ftype, payload = await proto.read_frame(reader)
            except (asyncio.IncompleteReadError, ConnectionError):
                break
            except proto.FrameError as exc:
                # Desynchronized stream: report once, then drop it.
                writer.write(proto.pack_frame(proto.ERROR, str(exc).encode()))
                await writer.drain()
                break
            try:
                if ftype == proto.PING:
                    response = proto.pack_frame(proto.PONG)
                elif ftype == proto.SHARD_CLASSIFY:
                    gen, frontiers, headers, _w = proto.decode_shard_classify(
                        payload
                    )
                    entry = generations.get(gen)
                    if entry is None:
                        raise proto.FrameError(
                            f"unknown generation {gen} "
                            f"(have {sorted(generations)})"
                        )
                    serving = entry[1]
                    if _np is not None:
                        atoms = serving.classify_batch_array(frontiers, headers)
                    else:
                        atoms = serving.classify_batch(
                            list(frontiers), headers
                        )
                    state["served"] += len(headers)
                    response = proto.pack_frame(
                        proto.SHARD_RESULT, proto.encode_shard_result(gen, atoms)
                    )
                elif ftype == proto.METRICS:
                    newest = max(generations)
                    info = {
                        "shard": generations[newest][1].shard_id,
                        "shards": generations[newest][1].shards,
                        "generations": sorted(generations),
                        "served": state["served"],
                        "pid": os.getpid(),
                    }
                    response = proto.pack_frame(
                        proto.METRICS_RESULT,
                        json.dumps(info, allow_nan=False).encode(),
                    )
                else:
                    raise proto.FrameError(
                        f"unsupported frame type {ftype:#04x}"
                    )
            except (proto.FrameError, KeyError, ValueError) as exc:
                # Per-frame contract: answer ERROR, keep the connection.
                response = proto.pack_frame(
                    proto.ERROR, (str(exc) or repr(exc)).encode()
                )
            writer.write(response)
            try:
                await writer.drain()
            except ConnectionError:
                break
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _replica_serve(conn, shm_name: str, host: str,
                         options: dict) -> None:
    backend = options.pop("backend", None)
    block, serving = _load_slice(shm_name, backend)
    # generation id -> (shm block, ShardServing); answers are strictly
    # by the generation a frame was routed under.
    state: dict = {"generations": {0: (block, serving)}, "served": 0}
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    control: asyncio.Queue[tuple] = asyncio.Queue()

    def on_control() -> None:
        while conn.poll():
            try:
                message = conn.recv()
            except EOFError:
                stop.set()
                return
            if message[0] == "stop":
                stop.set()
            else:
                control.put_nowait(message)

    async def control_loop() -> None:
        generations = state["generations"]
        while True:
            message = await control.get()
            if message[0] == "prepare":
                _tag, gen, name = message
                try:
                    generations[gen] = _load_slice(name, backend)
                except Exception as exc:
                    conn.send(
                        ("prepare_failed", gen,
                         f"{type(exc).__name__}: {exc}")
                    )
                    continue
                conn.send(("prepared", gen))
            elif message[0] == "commit":
                gen = message[1]
                # Keep the committed generation and its predecessor:
                # frames routed just before the flip may still arrive.
                for old in [g for g in generations if g < gen - 1]:
                    old_block, _serving = generations.pop(old)
                    old_block.close()
                conn.send(("committed", gen))

    active: set = set()

    async def handler(reader, writer) -> None:
        active.add(writer)
        try:
            await _replica_connection(state, reader, writer)
        finally:
            active.discard(writer)

    server = await asyncio.start_server(handler, host, 0)
    port = server.sockets[0].getsockname()[1]
    controller = loop.create_task(control_loop())
    loop.add_reader(conn.fileno(), on_control)
    conn.send(("ready", os.getpid(), port))
    try:
        await stop.wait()
    finally:
        loop.remove_reader(conn.fileno())
        controller.cancel()
        server.close()
        await server.wait_closed()
        for writer in list(active):
            writer.close()
        for _ in range(100):
            if not active:
                break
            await asyncio.sleep(0.01)
    try:
        conn.send(("stopped", state["served"]))
    except (BrokenPipeError, OSError):
        pass
    conn.close()
    generations = state.pop("generations")
    del serving
    for gen in list(generations):
        gen_block, gen_serving = generations.pop(gen)
        del gen_serving
        gen_block.close()


def _replica_main(conn, shm_name: str, host: str, options: dict) -> None:
    """Process entry point; module-level so every start method works."""
    try:
        asyncio.run(_replica_serve(conn, shm_name, host, options))
    except KeyboardInterrupt:
        pass


# ----------------------------------------------------------------------
# Parent-side cluster controller
# ----------------------------------------------------------------------


class ShardCluster:
    """Spawn and publish to a shard x replica grid of serving processes.

    Usage::

        cluster = ShardCluster(classifier, shards=4, replicas=2)
        cluster.start()                # all replicas listening
        router = ShardRouter.from_cluster(cluster)
        ...
        cluster.publish(new_classifier, router=router)   # ack'd handoff
        cluster.stop()

    The controller is synchronous like :class:`ServeWorkerPool` (it runs
    in the CLI process or a benchmark driver); :meth:`publish_async` is
    the in-event-loop variant that keeps the router flip atomic with
    respect to running batches.
    """

    def __init__(
        self,
        classifier,
        *,
        shards: int = 2,
        replicas: int = 1,
        depth: int | None = None,
        host: str = "127.0.0.1",
        backend: str | None = None,
        start_method: str | None = None,
        recorder=None,
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.plan = make_shard_plan(
            classifier, shards, depth=depth, backend=backend
        )
        self.shards = self.plan.shards
        self.replicas = replicas
        self.host = host
        self.backend = backend
        self.start_method = config.mp_start(start_method)
        self.recorder = recorder
        self.generation = 0
        self._depth = depth
        self._blobs: list[bytes] | None = [
            shard_artifact_bytes(classifier, self.plan, s, backend=backend)
            for s in range(self.shards)
        ]
        self._blocks: list = []
        self._processes: list[list] = []
        self._conns: list[list] = []
        #: ``endpoints[shard]`` -> list of ``(host, port)`` per replica.
        self.endpoints: list[list[tuple[str, int]]] = []

    # ------------------------------------------------------------------

    @staticmethod
    def _new_block(blob: bytes):
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=len(blob))
        shm.buf[: len(blob)] = blob
        return shm

    def _expect(self, conn, kinds: tuple[str, ...], what: str):
        if not conn.poll(CONTROL_TIMEOUT_S):
            raise RuntimeError(f"shard replica did not answer ({what})")
        try:
            message = conn.recv()
        except EOFError:
            raise RuntimeError(f"shard replica died during {what}") from None
        if message[0] not in kinds:
            raise RuntimeError(f"shard replica failed during {what}: {message}")
        return message

    def start(self) -> list[list[tuple[str, int]]]:
        """Spawn the grid; returns ``endpoints`` once every replica listens."""
        if self._processes:
            raise RuntimeError("cluster already started")
        blobs, self._blobs = self._blobs, None
        if blobs is None:
            raise RuntimeError("cluster was stopped; build a new one")
        self._blocks = [self._new_block(blob) for blob in blobs]
        context = multiprocessing.get_context(self.start_method)
        try:
            for shard in range(self.shards):
                procs, conns = [], []
                for _replica in range(self.replicas):
                    parent_conn, child_conn = context.Pipe()
                    process = context.Process(
                        target=_replica_main,
                        args=(
                            child_conn,
                            self._blocks[shard].name,
                            self.host,
                            {"backend": self.backend},
                        ),
                        daemon=True,
                    )
                    process.start()
                    child_conn.close()
                    procs.append(process)
                    conns.append(parent_conn)
                self._processes.append(procs)
                self._conns.append(conns)
            for shard in range(self.shards):
                ports = []
                for conn in self._conns[shard]:
                    message = self._expect(conn, ("ready",), "startup")
                    ports.append((self.host, message[2]))
                self.endpoints.append(ports)
        except BaseException:
            self.stop()
            raise
        if self.recorder is not None:
            self.recorder.serve.shard_shards = self.shards
            self.recorder.serve.shard_replicas = self.replicas
        return self.endpoints

    # -- generation handoff --------------------------------------------

    def prepare(self, classifier) -> dict:
        """Stage a new generation on every replica (ack'd); no flip yet.

        Writes each shard's new slice into fresh shared memory, signals
        every replica, and waits for all ``prepared`` acks.  Returns the
        pending-generation handle for :meth:`commit`.  Replicas keep
        answering the old generation throughout.
        """
        if not self._processes:
            raise RuntimeError("cluster is not running")
        started = time.perf_counter()
        generation = self.generation + 1
        plan = make_shard_plan(
            classifier, self.shards, depth=self._depth, backend=self.backend
        )
        blocks = [
            self._new_block(
                shard_artifact_bytes(classifier, plan, s, backend=self.backend)
            )
            for s in range(self.shards)
        ]
        try:
            for shard in range(self.shards):
                for conn in self._conns[shard]:
                    conn.send(("prepare", generation, blocks[shard].name))
            failures = []
            for conns in self._conns:
                for conn in conns:
                    message = self._expect(
                        conn, ("prepared", "prepare_failed"),
                        "generation prepare",
                    )
                    if message[0] == "prepare_failed":
                        failures.append(message[2])
            if failures:
                raise RuntimeError(
                    f"generation prepare failed in {len(failures)} "
                    f"replica(s): {failures[0]}"
                )
        except BaseException:
            for block in blocks:
                block.close()
                try:
                    block.unlink()
                except FileNotFoundError:
                    pass
            raise
        return {
            "generation": generation,
            "plan": plan,
            "blocks": blocks,
            "started": started,
        }

    def commit(self, pending: dict) -> None:
        """Finish a handoff: replicas retire generations older than
        ``gen - 1`` and the previous shared-memory blocks are unlinked.
        Call only after the router flipped to ``pending``."""
        generation = pending["generation"]
        for conns in self._conns:
            for conn in conns:
                conn.send(("commit", generation))
        for conns in self._conns:
            for conn in conns:
                self._expect(conn, ("committed",), "generation commit")
        old = self._blocks
        self._blocks = pending["blocks"]
        self.plan = pending["plan"]
        self.generation = generation
        for block in old:
            block.close()
            try:
                block.unlink()
            except FileNotFoundError:
                pass
        elapsed = time.perf_counter() - pending["started"]
        if self.recorder is not None:
            self.recorder.serve.record_handoff(elapsed)

    def publish(self, classifier, router: "ShardRouter | None" = None) -> int:
        """Full ack'd handoff from synchronous code; returns the new
        generation id.  With a ``router`` the flip happens between
        prepare and commit -- only safe when no event loop is
        concurrently routing (tests, CLI swaps); inside a loop use
        :meth:`publish_async`."""
        pending = self.prepare(classifier)
        if router is not None:
            router.flip(pending["plan"], pending["generation"])
        self.commit(pending)
        return pending["generation"]

    async def publish_async(self, classifier, router: "ShardRouter") -> int:
        """Handoff driven from inside the router's event loop.

        The blocking prepare/commit pipe work runs in the default
        executor; the router flip itself is a plain in-loop call, so no
        batch observes a half-swapped routing table.
        """
        loop = asyncio.get_running_loop()
        pending = await loop.run_in_executor(None, self.prepare, classifier)
        router.flip(pending["plan"], pending["generation"])
        await loop.run_in_executor(None, self.commit, pending)
        return pending["generation"]

    # -- fault injection / shutdown ------------------------------------

    def kill_replica(self, shard: int, replica: int) -> None:
        """Hard-kill one replica process (fail-over testing)."""
        process = self._processes[shard][replica]
        process.terminate()
        process.join(timeout=5)

    def stop(self) -> None:
        """Stop every replica and release OS resources. Idempotent."""
        for conns in self._conns:
            for conn in conns:
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        for procs in self._processes:
            for process in procs:
                process.join(timeout=CONTROL_TIMEOUT_S)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5)
        for conns in self._conns:
            for conn in conns:
                conn.close()
        self._processes = []
        self._conns = []
        self.endpoints = []
        for block in self._blocks:
            block.close()
            try:
                block.unlink()
            except FileNotFoundError:
                pass
        self._blocks = []

    def __enter__(self) -> "ShardCluster":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


# ----------------------------------------------------------------------
# Router
# ----------------------------------------------------------------------


class _ReplicaConn:
    """One persistent framed connection, (re)opened on demand."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader = None
        self._writer = None
        self._lock = asyncio.Lock()

    async def call(self, frame: bytes):
        """Send one frame, await one frame.  The per-connection lock
        serializes callers so responses pair with requests."""
        async with self._lock:
            if self._writer is None:
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port
                )
            self._writer.write(frame)
            await self._writer.drain()
            return await proto.read_frame(self._reader)

    def reset(self) -> None:
        """Drop the connection (after an error or timeout)."""
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    async def close(self) -> None:
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


class ShardRouter:
    """Route header batches across shard replicas; flip generations.

    The routing state is one ``(prefix, assignment, generation)`` tuple
    read exactly once per batch and replaced atomically by
    :meth:`flip` -- a batch runs entirely under the tuple it grabbed,
    and replicas answer strictly by the generation stamped into each
    ``SHARD_CLASSIFY`` frame, so answers never mix generations.
    """

    def __init__(
        self,
        *,
        plan,
        endpoints: list[list[tuple[str, int]]],
        generation: int = 0,
        counters: ServeCounters | None = None,
        timeout: float = ROUTER_TIMEOUT_S,
    ) -> None:
        if len(endpoints) != plan.shards:
            raise ValueError(
                f"{len(endpoints)} endpoint groups for {plan.shards} shards"
            )
        self.counters = counters if counters is not None else ServeCounters()
        self.counters.shard_shards = plan.shards
        self.counters.shard_replicas = max(len(group) for group in endpoints)
        self.timeout = timeout
        self._replicas = [
            [_ReplicaConn(host, port) for host, port in group]
            for group in endpoints
        ]
        self._rotor = [0] * len(endpoints)
        self._routing = self._routing_state(plan, generation)

    @classmethod
    def from_cluster(
        cls,
        cluster: ShardCluster,
        *,
        counters: ServeCounters | None = None,
        timeout: float = ROUTER_TIMEOUT_S,
    ) -> "ShardRouter":
        if counters is None and cluster.recorder is not None:
            counters = cluster.recorder.serve
        return cls(
            plan=cluster.plan,
            endpoints=cluster.endpoints,
            generation=cluster.generation,
            counters=counters,
            timeout=timeout,
        )

    @staticmethod
    def _routing_state(plan, generation: int) -> tuple:
        assignment = plan.assignment
        if _np is not None:
            assignment = _np.asarray(assignment, dtype=_np.int64)
        return (plan.prefix, assignment, generation)

    # ------------------------------------------------------------------

    @property
    def generation(self) -> int:
        return self._routing[2]

    def flip(self, plan, generation: int) -> None:
        """Atomically adopt a new plan + generation.

        Plain attribute assignment in the event loop: concurrent
        batches either read the old tuple or the new one, never a mix.
        Call only after every replica acked ``prepare`` for
        ``generation`` (:meth:`ShardCluster.prepare` guarantees this).
        """
        self._routing = self._routing_state(plan, generation)

    async def classify_batch(self, headers) -> list[int]:
        """Atom ids for a batch, routed and reassembled in order."""
        prefix, assignment, generation = self._routing
        n = len(headers)
        if n == 0:
            return []
        started = time.perf_counter()
        program = prefix.program
        if _np is not None and program.backend != "stdlib":
            width = _kernel.words_per_header(program.num_vars)
            words = _kernel.pack_headers(headers, program.num_vars)
            frontiers = prefix.route_batch_array(words)
            shard_ids = assignment[frontiers]
            out = _np.empty(n, dtype=_np.int64)
            tasks = []
            for shard in _np.unique(shard_ids):
                mask = shard_ids == shard
                tasks.append(self._shard_call(
                    int(shard), generation,
                    frontiers[mask], words[mask], width,
                    out, _np.nonzero(mask)[0],
                ))
            await asyncio.gather(*tasks)
            atoms = out.tolist()
        else:
            width = max(1, (program.num_vars + 63) // 64)
            frontiers = prefix.route_batch(list(headers))
            by_shard: dict[int, list[int]] = {}
            for index, frontier in enumerate(frontiers):
                by_shard.setdefault(assignment[frontier], []).append(index)
            out_list = [0] * n
            tasks = [
                self._shard_call(
                    shard, generation,
                    [frontiers[i] for i in indices],
                    [headers[i] for i in indices],
                    width, out_list, indices,
                )
                for shard, indices in by_shard.items()
            ]
            await asyncio.gather(*tasks)
            atoms = out_list
        self.counters.record_frame(n, time.perf_counter() - started)
        return atoms

    async def classify(self, header: int) -> int:
        return (await self.classify_batch([header]))[0]

    async def _shard_call(
        self, shard: int, generation: int, frontiers, headers,
        width: int, out, indices,
    ) -> None:
        payload = proto.encode_shard_classify(
            generation, frontiers, headers, width=width
        )
        frame = proto.pack_frame(proto.SHARD_CLASSIFY, payload)
        replicas = self._replicas[shard]
        start = self._rotor[shard]
        self._rotor[shard] = (start + 1) % len(replicas)
        last_exc: BaseException | None = None
        for attempt in range(len(replicas)):
            conn = replicas[(start + attempt) % len(replicas)]
            try:
                ftype, body = await asyncio.wait_for(
                    conn.call(frame), self.timeout
                )
            except _RETRYABLE as exc:
                last_exc = exc
                conn.reset()
                self.counters.record_retry(failover=len(replicas) > 1)
                continue
            if ftype == proto.ERROR:
                raise proto.RemoteError(body.decode(errors="replace"))
            if ftype != proto.SHARD_RESULT:
                raise proto.RemoteError(
                    f"unexpected frame type {ftype:#04x} from shard {shard}"
                )
            answered, atoms = proto.decode_shard_result(body)
            if answered != generation:
                raise proto.RemoteError(
                    f"shard {shard} answered generation {answered}, "
                    f"asked {generation}"
                )
            if len(atoms) != len(indices):
                raise proto.RemoteError(
                    f"shard {shard} answered {len(atoms)} atoms "
                    f"for {len(indices)} headers"
                )
            self.counters.record_route(shard, len(indices))
            if _np is not None and isinstance(out, _np.ndarray):
                out[indices] = atoms
            else:
                for position, atom in zip(indices, atoms):
                    out[position] = int(atom)
            return
        raise ConnectionError(
            f"all {len(replicas)} replica(s) of shard {shard} failed"
        ) from last_exc

    def metrics(self) -> dict:
        return self.counters.summary()

    async def close(self) -> None:
        for group in self._replicas:
            for conn in group:
                await conn.close()


# ----------------------------------------------------------------------
# Front server (framed + newline-JSON shim, one port)
# ----------------------------------------------------------------------


async def _front_framed(router: ShardRouter, reader, writer) -> None:
    """Framed loop; the leading magic byte was consumed by the peek."""
    first = True
    while True:
        try:
            if first:
                ftype, payload = await proto.read_rest_of_frame(reader)
                first = False
            else:
                ftype, payload = await proto.read_frame(reader)
        except (asyncio.IncompleteReadError, ConnectionError):
            return
        except proto.FrameError as exc:
            writer.write(proto.pack_frame(proto.ERROR, str(exc).encode()))
            await writer.drain()
            return
        try:
            if ftype == proto.PING:
                response = proto.pack_frame(proto.PONG)
            elif ftype == proto.CLASSIFY:
                headers, _width = proto.decode_classify(payload)
                atoms = await router.classify_batch(headers)
                response = proto.pack_frame(
                    proto.RESULT, proto.encode_result(atoms)
                )
            elif ftype == proto.METRICS:
                response = proto.pack_frame(
                    proto.METRICS_RESULT,
                    json.dumps(router.metrics(), allow_nan=False).encode(),
                )
            else:
                raise proto.FrameError(f"unsupported frame type {ftype:#04x}")
        except (proto.FrameError, proto.RemoteError, ConnectionError,
                ValueError) as exc:
            response = proto.pack_frame(
                proto.ERROR, (str(exc) or repr(exc)).encode()
            )
        writer.write(response)
        try:
            await writer.drain()
        except ConnectionError:
            return


async def _front_json(router: ShardRouter, reader, writer,
                      initial: bytes) -> None:
    """Newline-JSON compat shim: ping / classify-by-header / metrics.

    The full JSON API (packet objects, behavior queries) lives on the
    single-node server; the front tier only classifies.
    """
    from .tcp import _read_line

    pending = initial
    while True:
        try:
            line, overflow = await _read_line(reader)
        except (ConnectionError, OSError):
            return
        line = pending + line
        pending = b""
        if overflow:
            writer.write(b'{"ok": false, "error": "request too large"}\n')
            try:
                await writer.drain()
            except ConnectionError:
                return
            continue
        if not line:
            return
        if not line.strip():
            continue
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
            op = request.get("op")
            if op == "ping":
                response = {"ok": True, "pong": True}
            elif op == "metrics":
                response = {"ok": True, "metrics": router.metrics()}
            elif op == "classify":
                header = request.get("header")
                if not isinstance(header, int) or isinstance(header, bool):
                    raise ValueError(
                        "front-tier 'classify' needs an integer 'header'"
                    )
                atom = await router.classify(header)
                response = {"ok": True, "atom": int(atom)}
            else:
                raise ValueError(f"unknown op {op!r}")
        except Exception as exc:
            response = {"ok": False, "error": str(exc) or repr(exc)}
        writer.write((json.dumps(response, allow_nan=False) + "\n").encode())
        try:
            await writer.drain()
        except ConnectionError:
            return


async def _front_connection(router: ShardRouter, reader, writer) -> None:
    try:
        first = await reader.read(1)
        if not first:
            return
        if first[0] == proto.FRAME_MAGIC:
            await _front_framed(router, reader, writer)
        else:
            await _front_json(router, reader, writer, first)
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def start_front_server(
    router: ShardRouter, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Bind the dual-protocol front endpoint; ``port=0`` picks a port."""
    from .tcp import MAX_LINE_BYTES

    handler = lambda reader, writer: _front_connection(router, reader, writer)
    return await asyncio.start_server(handler, host, port, limit=MAX_LINE_BYTES)


async def serve_front_forever(
    router: ShardRouter, host: str, port: int, *, announce=None
) -> None:
    """``repro serve --shards`` driver: run the front tier until cancelled.

    Announces the bound address as one machine-readable JSON line so
    scripts (and tests) binding ``port=0`` can discover the port.
    """
    if announce is None:
        from .tcp import _announce_line

        announce = _announce_line
    server = await start_front_server(router, host, port)
    bound = server.sockets[0].getsockname()
    announce(json.dumps({
        "listening": [bound[0], bound[1]],
        "mode": "shard-router",
        "protocols": ["framed", "json"],
    }))
    try:
        async with server:
            await server.serve_forever()
    except asyncio.CancelledError:
        pass
