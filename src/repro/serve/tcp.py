"""Newline-delimited-JSON TCP front-end for :class:`QueryService`.

One request per line, one JSON response per line, in order.  The
protocol is deliberately minimal -- it exists so non-Python clients (and
``repro serve`` smoke tests) can drive the service without a dependency
on an RPC stack.  See ``docs/serving.md`` for the full wire contract.

Requests (``op`` selects the action)::

    {"op": "ping"}
    {"op": "classify", "header": 167772161}
    {"op": "classify", "packet": {"dst_ip": "10.0.0.1"}}
    {"op": "query", "packet": {"dst_ip": "10.0.0.1"}, "ingress": "SEAT"}
    {"op": "metrics"}
    {"op": "diff", "artifact": "/path/to/other.apc", "ingress": "SEAT"}
    {"op": "whatif", "add": ["SEAT:dst_ip=10.3.0.0/24->to_SALT"],
     "ingress": "SEAT"}

``diff`` compares the live generation against a saved artifact or JSON
snapshot on the server's filesystem; ``whatif`` applies candidate rule
specs (:func:`repro.diff.parse_rule_spec` syntax, ``add``/``remove``
lists) to a shadow fork and diffs it against the live generation.  Both
accept an optional integer ``limit`` capping the per-class entries in
the report (default :data:`DEFAULT_DIFF_LIMIT`; the summary counters
always cover the full diff).

Responses always carry ``ok``::

    {"ok": true, "atom": 12}
    {"ok": true, "atom": 12, "paths": [...], "delivered": [...], "drops": [...]}
    {"ok": false, "error": "shed"}          (queue saturated, shed policy)
    {"ok": false, "error": "timeout"}       (per-request deadline missed)
    {"ok": false, "error": "<message>"}     (malformed request, unknown box, ...)

A malformed line never kills the connection: the error is reported on
that line's response and the next line is processed normally.  That
includes oversized lines: a request longer than :data:`MAX_LINE_BYTES`
is discarded as it streams in and answered with ``{"ok": false,
"error": "request too large"}`` -- the connection survives.

The same port also speaks the length-prefixed binary framing of
:mod:`repro.serve.proto`: the first byte of a connection selects the
protocol (frames start with ``0xAA``, JSON never does).  Framed
clients get batched classification (``CLASSIFY`` -> ``RESULT``) against
the service's zero-copy batch path; newline-JSON stays as the compat
shim for humans and ``nc``.
"""

from __future__ import annotations

import asyncio
import json

from ..headerspace.fields import parse_ipv4
from . import proto
from .service import QueryService, QueryShed, ServiceClosed

__all__ = ["start_tcp_server", "serve_forever"]

#: Refuse absurd lines instead of buffering them (64 KiB is far beyond
#: any legitimate request in this protocol).
MAX_LINE_BYTES = 64 * 1024

#: Per-class entry cap applied to diff/what-if reports when the request
#: does not pick its own ``limit`` -- keeps responses inside one frame
#: even for churn-heavy diffs (summary counters always cover everything).
DEFAULT_DIFF_LIMIT = 50

#: Packet-field keys parsed as dotted-quad IPv4 strings; everything else
#: in a ``packet`` object must already be an integer field value.
_IP_FIELDS = ("dst_ip", "src_ip")


class _BadRequest(ValueError):
    """The request line is structurally invalid (reported per-line)."""


def _header_of(layout, request: dict) -> int:
    """Extract the packed header from a request's ``header``/``packet``."""
    if "header" in request:
        header = request["header"]
        if not isinstance(header, int) or isinstance(header, bool):
            raise _BadRequest("'header' must be an integer")
        return header
    packet = request.get("packet")
    if not isinstance(packet, dict):
        raise _BadRequest("request needs an integer 'header' or a 'packet' object")
    fields = {}
    for name, value in packet.items():
        if name not in layout:
            raise _BadRequest(f"unknown packet field {name!r} for this layout")
        if name in _IP_FIELDS and isinstance(value, str):
            fields[name] = parse_ipv4(value)
        elif isinstance(value, int) and not isinstance(value, bool):
            fields[name] = value
        else:
            raise _BadRequest(f"packet field {name!r} must be an int or IPv4 string")
    try:
        return layout.pack(fields)
    except (KeyError, ValueError) as exc:
        raise _BadRequest(f"cannot pack packet: {exc}") from exc


def _behavior_payload(atom_id: int, behavior) -> dict:
    return {
        "ok": True,
        "atom": atom_id,
        "paths": [list(path) for path in behavior.paths()],
        "delivered": sorted(behavior.delivered_hosts()),
        "drops": [[box, reason] for box, reason in behavior.drops()],
    }


def _diff_args(request: dict) -> tuple[str, str, int]:
    """Validate a diff request's ``artifact``/``ingress``/``limit``."""
    artifact = request.get("artifact")
    if not isinstance(artifact, str) or not artifact:
        raise _BadRequest("'diff' needs a non-empty string 'artifact' path")
    return artifact, _ingress_of(request, "diff"), _limit_of(request)


def _whatif_args(request: dict) -> tuple[list[str], list[str], str, int]:
    """Validate a what-if request's rule-spec lists and ingress."""
    add = request.get("add", [])
    remove = request.get("remove", [])
    for name, specs in (("add", add), ("remove", remove)):
        if not isinstance(specs, list) or not all(
            isinstance(spec, str) for spec in specs
        ):
            raise _BadRequest(f"'whatif' {name!r} must be a list of rule specs")
    if not add and not remove:
        raise _BadRequest("'whatif' needs at least one rule in 'add'/'remove'")
    return add, remove, _ingress_of(request, "whatif"), _limit_of(request)


def _ingress_of(request: dict, op: str) -> str:
    ingress = request.get("ingress")
    if not isinstance(ingress, str) or not ingress:
        raise _BadRequest(f"{op!r} needs a non-empty string 'ingress'")
    return ingress


def _limit_of(request: dict) -> int:
    limit = request.get("limit", DEFAULT_DIFF_LIMIT)
    if not isinstance(limit, int) or isinstance(limit, bool) or limit < 0:
        raise _BadRequest("'limit' must be a non-negative integer")
    return limit


async def _handle_request(service: QueryService, request: dict) -> dict:
    op = request.get("op")
    if op == "ping":
        return {"ok": True, "pong": True}
    if op == "metrics":
        return {"ok": True, "metrics": service.metrics()}
    if op == "diff":
        artifact, ingress, limit = _diff_args(request)
        report = await service.diff_generation(artifact, ingress, limit=limit)
        return {"ok": True, "diff": report}
    if op == "whatif":
        add, remove, ingress, limit = _whatif_args(request)
        report = await service.what_if(
            ingress, add=add, remove=remove, limit=limit
        )
        return {"ok": True, "whatif": report}
    layout = service.classifier.dataplane.layout
    if op == "classify":
        atom_id = await service.classify(_header_of(layout, request))
        return {"ok": True, "atom": atom_id}
    if op == "query":
        ingress = request.get("ingress")
        if not isinstance(ingress, str) or not ingress:
            raise _BadRequest("'query' needs a non-empty string 'ingress'")
        in_port = request.get("in_port")
        if in_port is not None and not isinstance(in_port, str):
            raise _BadRequest("'in_port' must be a string when present")
        behavior = await service.query(
            _header_of(layout, request), ingress, in_port
        )
        return _behavior_payload(behavior.atom_id, behavior)
    raise _BadRequest(f"unknown op {op!r}")


def _framed_json(payload: bytes) -> dict:
    """Decode a framed request's UTF-8 JSON object payload."""
    try:
        request = json.loads(payload)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _BadRequest(f"frame payload is not valid JSON: {exc}") from None
    if not isinstance(request, dict):
        raise _BadRequest("frame payload must be a JSON object")
    return request


async def _read_line(reader: asyncio.StreamReader) -> tuple[bytes, bool]:
    """One newline-terminated line, bounded: ``(line, overflowed)``.

    A line longer than the stream's limit is discarded as it arrives
    (``LimitOverrunError`` hands back how many buffered bytes are safe
    to drop without eating the separator) and reported with
    ``overflowed=True`` so the caller can answer an error on that line
    and keep the connection -- ``readline`` would have raised
    ``ValueError`` and forced a disconnect.  EOF returns the partial
    trailing line, then ``(b"", False)``.
    """
    overflowed = False
    while True:
        try:
            line = await reader.readuntil(b"\n")
        except asyncio.IncompleteReadError as exc:
            return exc.partial, overflowed
        except asyncio.LimitOverrunError as exc:
            overflowed = True
            await reader.read(exc.consumed)
            continue
        return line, overflowed


async def _handle_framed(
    service: QueryService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Binary-framed loop; the leading magic byte was already consumed."""
    first = True
    while True:
        try:
            if first:
                ftype, payload = await proto.read_rest_of_frame(reader)
                first = False
            else:
                ftype, payload = await proto.read_frame(reader)
        except (asyncio.IncompleteReadError, ConnectionError):
            break
        except proto.FrameError as exc:
            # Desynchronized stream: report once, then drop it.
            writer.write(proto.pack_frame(proto.ERROR, str(exc).encode()))
            await writer.drain()
            break
        try:
            if ftype == proto.PING:
                response = proto.pack_frame(proto.PONG)
            elif ftype == proto.CLASSIFY:
                headers, _width = proto.decode_classify(payload)
                atoms = await service.classify_frame(headers)
                response = proto.pack_frame(
                    proto.RESULT, proto.encode_result(atoms)
                )
            elif ftype == proto.METRICS:
                response = proto.pack_frame(
                    proto.METRICS_RESULT,
                    json.dumps(service.metrics(), allow_nan=False).encode(),
                )
            elif ftype == proto.DIFF:
                artifact, ingress, limit = _diff_args(_framed_json(payload))
                report = await service.diff_generation(
                    artifact, ingress, limit=limit
                )
                response = proto.pack_frame(
                    proto.DIFF_RESULT,
                    json.dumps(report, allow_nan=False).encode(),
                )
            elif ftype == proto.WHATIF:
                add, remove, ingress, limit = _whatif_args(
                    _framed_json(payload)
                )
                report = await service.what_if(
                    ingress, add=add, remove=remove, limit=limit
                )
                response = proto.pack_frame(
                    proto.WHATIF_RESULT,
                    json.dumps(report, allow_nan=False).encode(),
                )
            else:
                raise proto.FrameError(f"unsupported frame type {ftype:#04x}")
        except QueryShed:
            response = proto.pack_frame(proto.ERROR, b"shed")
        except ServiceClosed:
            writer.write(proto.pack_frame(proto.ERROR, b"service closed"))
            await writer.drain()
            break
        except (proto.FrameError, ValueError) as exc:
            service.counters.rejected += 1
            response = proto.pack_frame(
                proto.ERROR, (str(exc) or repr(exc)).encode()
            )
        except Exception as exc:
            response = proto.pack_frame(
                proto.ERROR, f"{type(exc).__name__}: {exc}".encode()
            )
        writer.write(response)
        try:
            await writer.drain()
        except ConnectionError:
            break


async def _handle_connection(
    service: QueryService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        # First byte selects the protocol: 0xAA opens a framed
        # connection, anything else (JSON starts with '{' or
        # whitespace) the newline-JSON loop.
        try:
            first = await reader.read(1)
        except (ConnectionError, OSError):
            first = b""
        if not first:
            return
        if first[0] == proto.FRAME_MAGIC:
            await _handle_framed(service, reader, writer)
            return
        pending = first
        while True:
            try:
                line, overflowed = await _read_line(reader)
            except (ConnectionError, OSError):
                break
            line = pending + line
            pending = b""
            if overflowed:
                service.counters.rejected += 1
                writer.write(
                    b'{"ok": false, "error": "request too large"}\n'
                )
                try:
                    await writer.drain()
                except ConnectionError:
                    break
                continue
            if not line:
                break
            if not line.strip():
                continue
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise _BadRequest("request must be a JSON object")
                response = await _handle_request(service, request)
            except QueryShed:
                response = {"ok": False, "error": "shed"}
            except asyncio.TimeoutError:
                response = {"ok": False, "error": "timeout"}
            except ServiceClosed:
                response = {"ok": False, "error": "service closed"}
                writer.write(
                    (json.dumps(response, allow_nan=False) + "\n").encode()
                )
                break
            except (_BadRequest, ValueError, KeyError) as exc:
                service.counters.rejected += 1
                response = {"ok": False, "error": str(exc) or repr(exc)}
            except Exception as exc:
                # Catch-all so the per-line contract survives unexpected
                # failures surfaced from classification (e.g. an
                # exception set on the request future by the dispatcher).
                response = {
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            writer.write((json.dumps(response, allow_nan=False) + "\n").encode())
            try:
                await writer.drain()
            except ConnectionError:
                break
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except ConnectionError:
            pass


async def start_tcp_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    sock=None,
) -> asyncio.AbstractServer:
    """Bind the newline-JSON endpoint; ``port=0`` picks a free port.

    The service must already be started.  The caller owns both
    lifetimes: close the returned server, then stop the service.
    ``sock`` serves an already-bound listening socket instead of binding
    ``host``/``port`` -- the multi-worker pool passes per-worker
    ``SO_REUSEPORT`` sockets this way.
    """
    handler = lambda reader, writer: _handle_connection(service, reader, writer)
    if sock is not None:
        return await asyncio.start_server(handler, sock=sock, limit=MAX_LINE_BYTES)
    return await asyncio.start_server(handler, host, port, limit=MAX_LINE_BYTES)


def _announce_line(line: str) -> None:
    # Flush: scripts discover the port by reading the first stdout line
    # through a pipe, where plain print() would sit in the block buffer.
    print(line, flush=True)


async def serve_forever(
    service: QueryService, host: str, port: int, *, announce=_announce_line
) -> None:
    """``repro serve`` driver: start service + endpoint, run until cancelled.

    The bound address is announced as one machine-readable JSON line
    (``{"listening": [host, port], ...}``) so scripts starting the
    server with ``port=0`` can parse the picked port from stdout.
    """
    async with service:
        server = await start_tcp_server(service, host, port)
        bound = server.sockets[0].getsockname()
        announce(json.dumps({
            "listening": [bound[0], bound[1]],
            "protocols": ["framed", "json"],
        }))
        try:
            async with server:
                await server.serve_forever()
        except asyncio.CancelledError:
            pass
