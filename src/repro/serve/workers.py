"""Multi-worker serving: processes sharing one compiled artifact.

The compiled classifier is tiny (Section VII-B) and, persisted as a
binary artifact, position-independent -- so N serving processes can map
*one* read-only copy out of :mod:`multiprocessing.shared_memory` instead
of each rebuilding (or even copying) it.  The pool gives ``repro serve
--serve-workers N`` its process-level parallelism:

* the parent builds the artifact blob once (:func:`repro.artifact.
  artifact_bytes`), places it in a ``SharedMemory`` block, and forks
  workers that restore their classifier straight from the shared pages;
* every worker binds its own ``SO_REUSEPORT`` listening socket on the
  same address, so the kernel load-balances incoming TCP connections
  across workers with no proxy in front;
* generation handoff extends the single-process swap protocol
  (:meth:`QueryService.adopt_generation`): the parent publishes a new
  artifact generation into a fresh shared-memory block, signals each
  worker over its control pipe, workers remap and swap behind their
  swap locks and ack, and only then does the parent unlink the old
  generation -- in-flight batches finish on the pages they started on.

Workers run the same :class:`QueryService` + newline-JSON TCP front-end
as single-process serving; clients cannot tell the difference except in
aggregate throughput.
"""

from __future__ import annotations

import asyncio
import gc
import multiprocessing
import os
import socket
import time
from multiprocessing import shared_memory

from .. import config
from ..artifact import artifact_bytes, load_artifact_buffer

__all__ = ["ServeWorkerPool", "closed_loop_qps"]

#: Seconds the parent waits for each worker's ready/ack/stopped message.
CONTROL_TIMEOUT_S = 60.0


def _reuseport_socket(host: str, port: int) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if hasattr(socket, "SO_REUSEPORT"):
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
    except BaseException:
        sock.close()
        raise
    return sock


class _Generation:
    """One attached shared-memory artifact generation (worker side).

    Attaching re-registers the block with the resource tracker, but
    multiprocessing children share the parent's tracker process under
    every start method (the tracker fd travels with the spawn
    preparation data), so the duplicate register is a set no-op and the
    single unregister happens when the parent unlinks.  Never unregister
    here: that would unbalance the shared cache.
    """

    def __init__(self, name: str) -> None:
        self.shm = shared_memory.SharedMemory(name=name)

    def close(self) -> bool:
        """Drop the mapping; ``False`` if buffers still pin the pages."""
        gc.collect()  # drop dead classifier's views of shm.buf first
        try:
            self.shm.close()
        except BufferError:
            return False
        return True


def _load_generation(name: str, backend: str | None):
    """(generation, classifier) restored from a shared-memory block."""
    generation = _Generation(name)
    classifier = load_artifact_buffer(
        generation.shm.buf, backend=backend, source=f"shm:{name}"
    )
    return generation, classifier


async def _worker_serve(conn, shm_name: str, host: str, port: int,
                        options: dict) -> None:
    from .service import QueryService
    from .tcp import MAX_LINE_BYTES, _handle_connection

    backend = options.pop("backend", None)
    generation, classifier = _load_generation(shm_name, backend)
    service = QueryService(classifier, backend=backend, **options)
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    # Adoptions are serialized through a queue: control messages arrive
    # on the pipe reader callback (no awaits allowed there) and the
    # consumer task below does the async swap work.
    adoptions: asyncio.Queue[str] = asyncio.Queue()

    def on_control() -> None:
        while conn.poll():
            message = conn.recv()
            if message[0] == "stop":
                stop.set()
            elif message[0] == "adopt":
                adoptions.put_nowait(message[1])

    async def adopt_loop() -> None:
        nonlocal generation
        while True:
            name = await adoptions.get()
            old = generation
            try:
                generation, fresh = _load_generation(name, backend)
                await service.adopt_generation(fresh)
            except Exception as exc:
                conn.send(("adopt_failed", name, f"{type(exc).__name__}: {exc}"))
                continue
            # The old generation's pages stay mapped until the last
            # buffer view dies with the old classifier; a still-pinned
            # mapping is only a deferred close, never a correctness
            # problem (the parent waits for this ack before unlinking).
            old.close()
            conn.send(("adopted", name))

    # Live client connections, tracked so shutdown can close them and
    # let their handlers unwind on EOF -- cancelling a streams handler
    # task makes 3.11's connection_made callback log spuriously.
    active: set = set()

    async def handler(reader, writer) -> None:
        active.add(writer)
        try:
            await _handle_connection(service, reader, writer)
        finally:
            active.discard(writer)

    async with service:
        service.counters.workers = 1
        sock = _reuseport_socket(host, port)
        server = await asyncio.start_server(
            handler, sock=sock, limit=MAX_LINE_BYTES
        )
        adopter = loop.create_task(adopt_loop())
        loop.add_reader(conn.fileno(), on_control)
        conn.send(("ready", os.getpid()))
        try:
            await stop.wait()
        finally:
            loop.remove_reader(conn.fileno())
            adopter.cancel()
            server.close()
            await server.wait_closed()
            for writer in list(active):
                writer.close()
            for _ in range(100):
                if not active:
                    break
                await asyncio.sleep(0.01)
    conn.send(("stopped", service.counters.served))
    conn.close()
    # Drop every reference into the shared pages before the interpreter
    # tears down, so the mapping closes instead of tripping BufferError
    # in SharedMemory.__del__ ("exported pointers exist").
    service.classifier = None
    del classifier
    generation.close()


def _worker_main(conn, shm_name: str, host: str, port: int,
                 options: dict) -> None:
    """Process entry point; module-level so every start method works."""
    try:
        asyncio.run(_worker_serve(conn, shm_name, host, port, options))
    except KeyboardInterrupt:
        pass


class ServeWorkerPool:
    """Parent-side controller for shared-memory serving workers.

    Usage::

        pool = ServeWorkerPool(classifier, workers=4, port=9000)
        pool.start()                 # returns once every worker listens
        ...
        pool.publish(new_classifier) # generation handoff, ack'd
        pool.stop()

    ``service_options`` passes through to each worker's
    :class:`QueryService` (``max_batch``, ``overflow``, ...).  The pool
    is synchronous on purpose: it runs in the CLI process (or a
    benchmark driver), not inside an event loop.
    """

    def __init__(
        self,
        classifier,
        *,
        workers: int | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        backend: str | None = None,
        service_options: dict | None = None,
        start_method: str | None = None,
        recorder=None,
    ) -> None:
        self.workers = config.serve_workers(workers)
        self.host = host
        self.port = port
        self.backend = backend
        self.service_options = dict(service_options or {})
        self.start_method = config.mp_start(start_method)
        self.recorder = recorder
        self._blob = artifact_bytes(classifier, backend=backend)
        self._shm: shared_memory.SharedMemory | None = None
        self._reserve: socket.socket | None = None
        self._processes: list = []
        self._conns: list = []
        self._generations = 0

    # ------------------------------------------------------------------

    def _new_block(self, blob: bytes) -> shared_memory.SharedMemory:
        shm = shared_memory.SharedMemory(create=True, size=len(blob))
        shm.buf[: len(blob)] = blob
        return shm

    def _expect(self, conn, kinds: tuple[str, ...], what: str):
        if not conn.poll(CONTROL_TIMEOUT_S):
            raise RuntimeError(f"serve worker did not answer ({what})")
        message = conn.recv()
        if message[0] not in kinds:
            raise RuntimeError(f"serve worker failed during {what}: {message}")
        return message

    def start(self) -> int:
        """Spawn the workers; returns the bound port once all listen."""
        if self._processes:
            raise RuntimeError("pool already started")
        self._shm = self._new_block(self._blob)
        self._blob = b""
        # Reserve the port in the parent (bound, never listening) so
        # port=0 resolves once and every worker binds the same number.
        self._reserve = _reuseport_socket(self.host, self.port)
        self.port = self._reserve.getsockname()[1]
        context = multiprocessing.get_context(self.start_method)
        try:
            for _ in range(self.workers):
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_worker_main,
                    args=(
                        child_conn,
                        self._shm.name,
                        self.host,
                        self.port,
                        {"backend": self.backend, **self.service_options},
                    ),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._processes.append(process)
                self._conns.append(parent_conn)
            for conn in self._conns:
                self._expect(conn, ("ready",), "startup")
        except BaseException:
            self.stop()
            raise
        if self.recorder is not None:
            self.recorder.serve.workers = self.workers
            self.recorder.serve.generations = self._generations
        return self.port

    def publish(self, classifier) -> None:
        """Hand a new classifier generation to every worker (ack'd).

        Writes the artifact blob into a fresh shared-memory block,
        signals the workers, waits for every ``adopted`` ack, then
        retires the previous generation's block.
        """
        if not self._processes:
            raise RuntimeError("pool is not running")
        blob = artifact_bytes(classifier, backend=self.backend)
        fresh = self._new_block(blob)
        for conn in self._conns:
            conn.send(("adopt", fresh.name))
        failures = []
        for conn in self._conns:
            message = self._expect(
                conn, ("adopted", "adopt_failed"), "generation handoff"
            )
            if message[0] == "adopt_failed":
                failures.append(message[2])
        if failures:
            raise RuntimeError(
                f"generation handoff failed in {len(failures)} worker(s): "
                f"{failures[0]}"
            )
        old = self._shm
        self._shm = fresh
        self._generations += 1
        if self.recorder is not None:
            self.recorder.serve.generations = self._generations
        if old is not None:
            old.close()
            old.unlink()

    def stop(self) -> None:
        """Stop workers and release every OS resource. Idempotent."""
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=CONTROL_TIMEOUT_S)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
        for conn in self._conns:
            conn.close()
        self._processes = []
        self._conns = []
        if self._reserve is not None:
            self._reserve.close()
            self._reserve = None
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
            self._shm = None

    def __enter__(self) -> "ServeWorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def closed_loop_qps(
    host: str,
    port: int,
    headers: list[int],
    *,
    connections: int = 4,
    duration_s: float = 2.0,
) -> dict:
    """Closed-loop TCP load: ``connections`` clients, each one request
    outstanding, for ``duration_s``.  Returns aggregate throughput --
    the benchmark's view of single- vs multi-worker serving.
    """

    async def _client(index: int, stats: dict, deadline: float) -> None:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            k = index
            while time.perf_counter() < deadline:
                header = headers[k % len(headers)]
                k += connections
                writer.write(
                    (f'{{"op": "classify", "header": {header}}}\n').encode()
                )
                await writer.drain()
                line = await reader.readline()
                if not line:
                    break
                stats["responses"] += 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _drive() -> dict:
        stats = {"responses": 0}
        started = time.perf_counter()
        deadline = started + duration_s
        await asyncio.gather(
            *(_client(i, stats, deadline) for i in range(connections))
        )
        elapsed = time.perf_counter() - started
        return {
            "responses": stats["responses"],
            "elapsed_s": elapsed,
            "qps": stats["responses"] / elapsed if elapsed > 0 else 0.0,
            "connections": connections,
        }

    return asyncio.run(_drive())
