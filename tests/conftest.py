"""Shared fixtures: small networks and classifiers reused across tests.

Expensive artifacts (dataset builds, atomic-predicate computation) are
session-scoped; tests must treat them as read-only.  Tests that mutate a
classifier build their own from the factory fixtures.
"""

from __future__ import annotations

import random

import pytest

from repro.core.atomic import AtomicUniverse
from repro.core.classifier import APClassifier
from repro.datasets import internet2_like, stanford_like, toy_network
from repro.network.dataplane import DataPlane


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(12345)


@pytest.fixture()
def toy_net():
    return toy_network()


@pytest.fixture()
def toy_dataplane(toy_net) -> DataPlane:
    return DataPlane(toy_net)


@pytest.fixture()
def toy_universe(toy_dataplane) -> AtomicUniverse:
    return AtomicUniverse.compute(toy_dataplane.manager, toy_dataplane.predicates())


@pytest.fixture(scope="session")
def internet2_net():
    return internet2_like()


@pytest.fixture(scope="session")
def internet2_classifier(internet2_net) -> APClassifier:
    return APClassifier.build(internet2_net)


@pytest.fixture(scope="session")
def stanford_net():
    # Deliberately small: tests need structure, not scale.
    return stanford_like(subnets_per_zone=2, host_ports_per_zone=1)


@pytest.fixture(scope="session")
def stanford_classifier(stanford_net) -> APClassifier:
    return APClassifier.build(stanford_net)
