"""Tests for the statistics and reporting helpers."""

import json
import math

import pytest

from repro.analysis.reporting import format_qps, render_cdf, render_series, render_table
from repro.analysis.stats import (
    MIN_ELAPSED_S,
    DepthStats,
    ThroughputResult,
    cdf,
    measure_throughput,
    pearson,
    percentile,
)


class TestCdf:
    def test_steps_reach_one(self):
        points = cdf([3, 1, 2])
        assert points[-1] == (3, 1.0)
        assert points[0] == (1, pytest.approx(1 / 3))

    def test_duplicates_merge(self):
        points = cdf([2, 2, 5])
        assert points == [(2, pytest.approx(2 / 3)), (5, 1.0)]

    def test_empty(self):
        assert cdf([]) == []


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_interpolation(self):
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_bounds(self):
        values = [5, 1, 9]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 9

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_single_value(self):
        assert percentile([7], 95) == 7.0


class TestPearson:
    def test_perfect_correlation(self):
        assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_independence_near_zero(self):
        assert abs(pearson([1, 2, 3, 4], [1, -1, 1, -1])) < 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            pearson([1], [1])
        with pytest.raises(ValueError):
            pearson([1, 1], [2, 3])


class TestDepthStats:
    def test_from_tree(self, internet2_classifier):
        stats = DepthStats.from_tree(internet2_classifier.tree)
        assert stats.count == internet2_classifier.universe.atom_count
        assert stats.average == pytest.approx(
            internet2_classifier.tree.average_depth()
        )
        assert stats.maximum == internet2_classifier.tree.max_depth()
        assert stats.fraction_at_most(stats.maximum) == pytest.approx(1.0)
        assert stats.fraction_at_most(-1) == 0.0


class TestThroughput:
    def test_measure(self):
        result = measure_throughput(lambda h: h, [1, 2, 3], repeat=10)
        assert result.queries == 30
        assert result.qps > 0
        assert "qps" in repr(result)

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_throughput(lambda h: h, [])

    def test_zero_elapsed_stays_finite(self):
        # A zero-duration measurement (coarse clock) must not produce
        # float("inf"): json serializes that as the non-standard literal
        # ``Infinity`` and strict parsers reject the result files.
        result = ThroughputResult(queries=10, elapsed_s=0.0)
        assert math.isfinite(result.qps)
        assert result.qps == 10 / MIN_ELAPSED_S
        json.loads(json.dumps({"qps": result.qps}, allow_nan=False))


class TestRendering:
    def test_table_alignment(self):
        text = render_table("T", ["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_series_downsamples(self):
        points = [(i, i * 2) for i in range(200)]
        text = render_series("S", "x", "y", points, max_points=10)
        assert len(text.splitlines()) <= 15
        assert "199" in text  # last point always kept

    def test_cdf_rendering(self):
        text = render_cdf("C", [(1.0, 0.5), (2.0, 1.0)])
        assert "50.0%" in text and "100.0%" in text

    def test_format_qps(self):
        assert format_qps(2_500_000) == "2.50 Mqps"
        assert format_qps(6_000) == "6.0 Kqps"
        assert format_qps(42) == "42 qps"
