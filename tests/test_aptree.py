"""AP Tree tests, including the paper's worked example (Figs. 1-2).

The figure example: three predicates over a space they fully determine --
p1 equal to a single atom, p2 and p3 properly overlapping, and a non-empty
all-false region -- giving exactly five atomic predicates.  Placement
order (p1, p2, p3) yields average leaf depth 2.6; order (p2, p3, p1)
yields 2.4, matching Fig. 2(b)/(c).
"""

from __future__ import annotations

import random

import pytest

from repro.bdd import BDDManager, Function
from repro.core.aptree import build_ap_tree
from repro.core.atomic import AtomicUniverse
from repro.core.construction import (
    best_from_random,
    build_oapt,
    build_optimal,
    build_quick_ordering,
    build_with_order,
)
from repro.core.ordering import fixed_order_chooser
from repro.network.dataplane import LabeledPredicate


def fig1_universe() -> tuple[AtomicUniverse, list[int]]:
    """Encode Fig. 1(b) over a 3-bit space.

    points: p1 = {0}, p2 = {2, 3}, p3 = {3..7}; atoms are
    {0}, {1}, {2}, {3}, {4..7}  (a1, outside, p2-only, p2&p3, p3-only).
    """
    mgr = BDDManager(3)

    def from_points(points: set[int]) -> Function:
        fn = Function.false(mgr)
        for point in points:
            fn = fn | Function.cube(
                mgr, {i: bool((point >> (2 - i)) & 1) for i in range(3)}
            )
        return fn

    p1 = from_points({0})
    p2 = from_points({2, 3})
    p3 = from_points({3, 4, 5, 6, 7})
    labeled = [
        LabeledPredicate(1, "forward", "b1", "to_h1", p1),
        LabeledPredicate(2, "forward", "b1", "to_b2", p2),
        LabeledPredicate(3, "forward", "b2", "to_h2", p3),
    ]
    universe = AtomicUniverse.compute(mgr, labeled)
    return universe, [1, 2, 3]


class TestFig2Example:
    def test_five_atoms(self):
        universe, _ = fig1_universe()
        assert universe.atom_count == 5

    def test_order_p1_p2_p3_average_depth(self):
        universe, _ = fig1_universe()
        tree = build_with_order(universe, [1, 2, 3])
        assert tree.average_depth() == pytest.approx(2.6)

    def test_order_p2_p3_p1_average_depth(self):
        universe, _ = fig1_universe()
        tree = build_with_order(universe, [2, 3, 1])
        assert tree.average_depth() == pytest.approx(2.4)

    def test_oapt_achieves_optimal_depth(self):
        universe, _ = fig1_universe()
        assert build_oapt(universe).average_depth() == pytest.approx(2.4)

    def test_exhaustive_optimum_is_2_4(self):
        universe, _ = fig1_universe()
        assert build_optimal(universe).average_depth() == pytest.approx(2.4)

    def test_quick_ordering_places_singleton_last(self):
        universe, _ = fig1_universe()
        tree = build_quick_ordering(universe)
        # |R(p1)| = 1 while |R(p2)| = |R(p3)| = 2: p1 must not be the root.
        assert tree.root.pid in (2, 3)

    def test_classification_over_all_points(self):
        universe, _ = fig1_universe()
        tree = build_with_order(universe, [1, 2, 3])
        for header in range(8):
            assert tree.classify(header) == universe.classify(header)


class TestTreeStructure:
    def test_pruned_tree_is_full_binary(self):
        universe, _ = fig1_universe()
        tree = build_with_order(universe, [1, 2, 3])
        # Full binary tree: nodes = 2 * leaves - 1, every internal node
        # has two children (pruning removed single-child nodes).
        assert tree.node_count() == 2 * tree.leaf_count() - 1
        for node in tree._walk():
            if not node.is_leaf:
                assert node.low is not None and node.high is not None

    def test_leaf_depths_and_max(self):
        universe, _ = fig1_universe()
        tree = build_with_order(universe, [1, 2, 3])
        depths = sorted(tree.leaf_depths().values())
        assert depths == [1, 3, 3, 3, 3]
        assert tree.max_depth() == 3

    def test_weighted_average_depth(self):
        universe, _ = fig1_universe()
        tree = build_with_order(universe, [1, 2, 3])
        depths = tree.leaf_depths()
        shallow = min(depths, key=depths.get)
        heavy = {shallow: 1000.0}
        assert tree.average_depth(heavy) < tree.average_depth()

    def test_classify_with_depth(self):
        universe, _ = fig1_universe()
        tree = build_with_order(universe, [1, 2, 3])
        depths = tree.leaf_depths()
        for header in range(8):
            atom_id, depth = tree.classify_with_depth(header)
            assert depth == depths[atom_id]

    def test_single_atom_universe(self):
        mgr = BDDManager(2)
        labeled = [LabeledPredicate(0, "forward", "b", "p", Function.true(mgr))]
        universe = AtomicUniverse.compute(mgr, labeled)
        tree = build_ap_tree(universe, fixed_order_chooser([0]))
        assert tree.leaf_count() == 1
        assert tree.average_depth() == 0.0
        assert tree.classify(0) == tree.classify(3)

    def test_empty_universe_rejected(self):
        mgr = BDDManager(2)
        universe = AtomicUniverse(mgr)
        with pytest.raises(ValueError):
            build_ap_tree(universe, fixed_order_chooser([]))


class TestApplySplits:
    def test_split_mirrors_universe(self):
        universe, order = fig1_universe()
        tree = build_with_order(universe, order)
        mgr = universe.manager
        # New predicate cutting the big atom {4..7} into {4,5} / {6,7}.
        new_fn = Function.cube(mgr, {0: True, 1: False})
        splits = universe.add_predicate(9, new_fn)
        split_count = tree.apply_splits(9, new_fn.node, splits)
        assert split_count == 1
        assert tree.leaf_count() == universe.atom_count == 6
        for header in range(8):
            assert tree.classify(header) == universe.classify(header)

    def test_non_splitting_addition_keeps_tree(self):
        universe, order = fig1_universe()
        tree = build_with_order(universe, order)
        before = tree.node_count()
        true_fn = Function.true(universe.manager)
        splits = universe.add_predicate(9, true_fn)
        assert tree.apply_splits(9, true_fn.node, splits) == 0
        assert tree.node_count() == before


class TestDatasetTrees:
    def test_internet2_tree_classifies_correctly(self, internet2_classifier):
        rng = random.Random(2)
        universe = internet2_classifier.universe
        tree = internet2_classifier.tree
        for _ in range(100):
            header = rng.getrandbits(32)
            assert tree.classify(header) == universe.classify(header)

    def test_tree_depth_well_below_predicate_count(self, internet2_classifier):
        stats = internet2_classifier.stats()
        assert stats.tree_average_depth < stats.predicates / 2

    def test_random_orders_all_correct(self, internet2_classifier):
        universe = internet2_classifier.universe
        rng = random.Random(4)
        tree, _ = best_from_random(universe, trials=3, rng=rng)
        for _ in range(50):
            header = rng.getrandbits(32)
            assert tree.classify(header) == universe.classify(header)
