"""Binary artifact tests: round-trip fidelity and corruption refusal.

The artifact is the warm-start contract (Section VII-B): whatever it
restores must answer *bit-identically* to the classifier that was saved,
and anything short of a pristine file must raise a typed
:class:`ArtifactError` -- a damaged artifact may refuse to load, but it
must never load and answer differently.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.artifact import (
    MAGIC,
    ArtifactCorrupt,
    ArtifactError,
    ArtifactMismatch,
    ArtifactVersionError,
    artifact_bytes,
    describe_artifact,
    load_artifact,
    load_artifact_buffer,
    load_serving,
    load_serving_buffer,
    save_artifact,
)
from repro.core.classifier import APClassifier
from repro.core.compiled import available_backends
from repro.datasets import internet2_like, random_headers, rule_update_stream, toy_network


def classify_all(classifier, headers):
    return [classifier.tree.classify(header) for header in headers]


def sample_headers(classifier, count=200, seed=7):
    rng = random.Random(seed)
    return random_headers(classifier.dataplane.layout, count, rng)


def apply_updates(classifier, network, count, seed):
    rng = random.Random(seed)
    for update in rule_update_stream(network, count, rng):
        if update.kind == "insert":
            classifier.insert_rule(update.box, update.rule)
        else:
            classifier.remove_rule(update.box, update.rule)


class TestRoundTrip:
    @pytest.mark.parametrize("backend", available_backends())
    def test_file_round_trip_bit_identical(self, tmp_path, backend):
        original = APClassifier.build(toy_network())
        path = tmp_path / "toy.apc"
        written = save_artifact(original, path, backend=backend)
        assert written == path.stat().st_size
        restored = load_artifact(path, backend=backend)
        headers = sample_headers(original)
        assert classify_all(restored, headers) == classify_all(original, headers)

    def test_internet2_round_trip(self, tmp_path, internet2_classifier):
        path = tmp_path / "i2.apc"
        save_artifact(internet2_classifier, path)
        restored = load_artifact(path, deep_verify=True)
        headers = sample_headers(internet2_classifier)
        assert classify_all(restored, headers) == classify_all(
            internet2_classifier, headers
        )

    def test_mmap_and_copy_loads_agree(self, tmp_path):
        original = APClassifier.build(toy_network())
        path = tmp_path / "toy.apc"
        save_artifact(original, path)
        headers = sample_headers(original)
        mapped = load_artifact(path, use_mmap=True)
        copied = load_artifact(path, use_mmap=False)
        assert classify_all(mapped, headers) == classify_all(copied, headers)

    def test_buffer_round_trip(self):
        original = APClassifier.build(toy_network())
        blob = artifact_bytes(original)
        restored = load_artifact_buffer(blob)
        headers = sample_headers(original)
        assert classify_all(restored, headers) == classify_all(original, headers)

    @pytest.mark.parametrize("backend", available_backends())
    def test_serving_only_load(self, tmp_path, backend):
        original = APClassifier.build(toy_network())
        path = tmp_path / "toy.apc"
        save_artifact(original, path, backend=backend)
        engine = load_serving(path, backend=backend)
        headers = sample_headers(original)
        assert list(engine.classify_batch(headers)) == classify_all(
            original, headers
        )

    def test_serving_buffer_load(self):
        original = APClassifier.build(toy_network())
        engine = load_serving_buffer(artifact_bytes(original))
        headers = sample_headers(original)
        assert list(engine.classify_batch(headers)) == classify_all(
            original, headers
        )

    def test_restored_classifier_absorbs_updates(self, tmp_path):
        network = internet2_like(prefixes_per_router=1)
        original = APClassifier.build(network)
        path = tmp_path / "i2.apc"
        save_artifact(original, path)
        restored = load_artifact(path)
        apply_updates(restored, network, 12, seed=3)
        headers = sample_headers(restored, count=120)
        for header in headers:
            assert restored.tree.classify(header) == restored.universe.classify(
                header
            )

    def test_describe_matches_manifest(self, tmp_path):
        original = APClassifier.build(toy_network())
        path = tmp_path / "toy.apc"
        save_artifact(original, path)
        summary = describe_artifact(path)
        from repro.artifact import CLASSIFIER_KIND

        assert summary["kind"] == CLASSIFIER_KIND
        assert summary["bytes"] == path.stat().st_size
        assert summary["atoms"] == original.universe.atom_count


class TestGhostPredicates:
    """Updates tombstone predicates the tree still evaluates; the
    artifact must carry those ghosts and keep answers identical."""

    def test_post_update_round_trip(self, tmp_path):
        network = internet2_like(prefixes_per_router=2)
        classifier = APClassifier.build(network)
        apply_updates(classifier, network, 24, seed=11)
        path = tmp_path / "ghost.apc"
        save_artifact(classifier, path)
        restored = load_artifact(path, deep_verify=True)
        headers = sample_headers(classifier, count=300)
        assert classify_all(restored, headers) == classify_all(
            classifier, headers
        )

    def test_second_generation_round_trip(self, tmp_path):
        """Saving a *restored* classifier (negative ghost pids) works."""
        network = internet2_like(prefixes_per_router=2)
        classifier = APClassifier.build(network)
        apply_updates(classifier, network, 24, seed=11)
        gen1 = tmp_path / "gen1.apc"
        save_artifact(classifier, gen1)
        restored = load_artifact(gen1)
        gen2 = tmp_path / "gen2.apc"
        save_artifact(restored, gen2)
        second = load_artifact(gen2, deep_verify=True)
        headers = sample_headers(classifier, count=300)
        assert classify_all(second, headers) == classify_all(
            classifier, headers
        )


@given(updates=st.integers(min_value=0, max_value=20), seed=st.integers(0, 2**16))
@settings(max_examples=12, deadline=None)
def test_round_trip_property(updates, seed, tmp_path_factory):
    """Any update history must survive save/load bit-identically."""
    network = toy_network()
    classifier = APClassifier.build(network)
    apply_updates(classifier, network, updates, seed)
    path = tmp_path_factory.mktemp("prop") / "prop.apc"
    save_artifact(classifier, path)
    restored = load_artifact(path)
    headers = sample_headers(classifier, count=100, seed=seed)
    assert classify_all(restored, headers) == classify_all(classifier, headers)


class TestCorruption:
    """Damage must raise a typed error -- never a wrong answer."""

    @pytest.fixture()
    def blob(self, tmp_path):
        classifier = APClassifier.build(toy_network())
        path = tmp_path / "good.apc"
        save_artifact(classifier, path)
        return path.read_bytes()

    def _expect_refusal(self, tmp_path, corrupted: bytes):
        path = tmp_path / "bad.apc"
        path.write_bytes(corrupted)
        with pytest.raises(ArtifactError):
            load_artifact(path)

    def test_truncation(self, tmp_path, blob):
        for cut in (4, len(blob) // 2, len(blob) - 3):
            self._expect_refusal(tmp_path, blob[:cut])

    def test_every_region_detects_a_flipped_byte(self, tmp_path, blob):
        # One flip in the magic, the header, the manifest, and deep in the
        # section data; CRCs make each of them loud.
        for offset in (2, 12, 40, len(blob) - 8):
            mutated = bytearray(blob)
            mutated[offset] ^= 0xFF
            self._expect_refusal(tmp_path, bytes(mutated))

    def test_flipped_bytes_sweep_never_wrong_answers(self, tmp_path, blob):
        """Flip one byte at many offsets: every load either refuses with a
        typed error or -- if the flip landed in dead padding -- still
        answers exactly like the original."""
        original = load_artifact_buffer(blob)
        headers = sample_headers(original, count=50)
        expected = classify_all(original, headers)
        rng = random.Random(99)
        offsets = rng.sample(range(len(blob)), min(60, len(blob)))
        path = tmp_path / "flip.apc"
        for offset in offsets:
            mutated = bytearray(blob)
            mutated[offset] ^= 0x5A
            path.write_bytes(bytes(mutated))
            try:
                restored = load_artifact(path)
            except ArtifactError:
                continue
            assert classify_all(restored, headers) == expected

    def test_bad_magic(self, tmp_path, blob):
        self._expect_refusal(tmp_path, b"NOTANAPC" + blob[len(MAGIC):])

    def test_wrong_container_version(self, tmp_path, blob):
        mutated = bytearray(blob)
        mutated[len(MAGIC)] = 0xEE  # container version field (u32 LE)
        path = tmp_path / "ver.apc"
        path.write_bytes(bytes(mutated))
        with pytest.raises(ArtifactVersionError):
            load_artifact(path)

    def test_wrong_payload_version(self, tmp_path):
        import json

        from repro.artifact import build_artifact_bytes
        from repro.artifact.codec import _manifest_and_sections

        classifier = APClassifier.build(toy_network())
        manifest, sections = _manifest_and_sections(classifier)
        manifest = dict(manifest, payload_version=999)
        path = tmp_path / "payload.apc"
        path.write_bytes(build_artifact_bytes(manifest, sections))
        with pytest.raises(ArtifactVersionError):
            load_artifact(path)
        del json

    def test_wrong_kind(self, tmp_path):
        from repro.artifact import build_artifact_bytes
        from repro.artifact.codec import _manifest_and_sections

        classifier = APClassifier.build(toy_network())
        manifest, sections = _manifest_and_sections(classifier)
        manifest = dict(manifest, kind="something-else")
        path = tmp_path / "kind.apc"
        path.write_bytes(build_artifact_bytes(manifest, sections))
        with pytest.raises(ArtifactMismatch):
            load_artifact(path)

    def test_empty_file(self, tmp_path):
        self._expect_refusal(tmp_path, b"")

    def test_errors_are_typed(self, tmp_path, blob):
        """Every corruption error is an ArtifactError subclass, so the
        CLI can catch one type and print one line."""
        assert issubclass(ArtifactCorrupt, ArtifactError)
        assert issubclass(ArtifactVersionError, ArtifactError)
        assert issubclass(ArtifactMismatch, ArtifactError)
        path = tmp_path / "t.apc"
        path.write_bytes(blob[: len(blob) // 3])
        with pytest.raises(ArtifactCorrupt):
            load_artifact(path)
