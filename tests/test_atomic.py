"""Tests for atomic predicate computation (the Fig. 1 example and the
defining invariants)."""

import random

import pytest

from repro.bdd import Function
from repro.core.atomic import AtomicUniverse
from repro.headerspace.fields import parse_ipv4
from repro.network.dataplane import DataPlane
from repro.datasets import toy_network


class TestToyExample:
    """The paper's Fig. 1: p1, p2, p3 with p3 straddling p1 and p2."""

    def test_atom_count(self, toy_universe):
        # Five non-empty regions of Fig. 1(b) plus the all-drop remainder.
        assert toy_universe.atom_count == 6

    def test_partition_invariants(self, toy_universe):
        assert toy_universe.verify_partition()

    def test_every_predicate_is_union_of_atoms(self, toy_dataplane, toy_universe):
        for labeled in toy_dataplane.predicates():
            rebuilt = Function.false(toy_dataplane.manager)
            for atom_id in toy_universe.r(labeled.pid):
                rebuilt = rebuilt | toy_universe.atom_fn(atom_id)
            assert rebuilt == labeled.fn

    def test_classify_is_consistent_with_membership(self, toy_dataplane, toy_universe):
        rng = random.Random(5)
        for _ in range(50):
            header = rng.getrandbits(32)
            atom_id = toy_universe.classify(header)
            assert toy_universe.atom_fn(atom_id).evaluate(header)
            # Membership in R(p) must equal the predicate's own verdict.
            for labeled in toy_dataplane.predicates():
                assert toy_universe.contains(labeled.pid, atom_id) == labeled.fn.evaluate(header)

    def test_fig1_atom_identities(self, toy_dataplane, toy_universe):
        """Check a concrete atom: 10.2.0.0/17 is exactly (~p1 & p2 & p3)."""
        header = parse_ipv4("10.2.1.1")
        atom_id = toy_universe.classify(header)
        verdicts = [
            toy_universe.contains(lp.pid, atom_id)
            for lp in toy_dataplane.predicates()
        ]
        # Predicates are (b1->to_h1)=p1, (b1->to_b2)=p2, (b2->to_h2)=p3 in
        # some order; exactly two must contain this atom (p2 and p3).
        assert sum(verdicts) == 2


class TestInvariantChecks:
    def test_duplicate_pid_rejected(self, toy_dataplane):
        universe = AtomicUniverse.compute(
            toy_dataplane.manager, toy_dataplane.predicates()
        )
        first = toy_dataplane.predicates()[0]
        with pytest.raises(ValueError):
            universe.add_predicate(first.pid, first.fn)

    def test_remove_unknown_pid_rejected(self, toy_universe):
        with pytest.raises(KeyError):
            toy_universe.remove_predicate(99999)

    def test_duplicate_predicate_functions_share_atoms(self, toy_dataplane):
        predicates = toy_dataplane.predicates()
        # Feed the same function twice under different pids.
        doubled = predicates + [
            type(predicates[0])(
                pid=1000,
                kind=predicates[0].kind,
                box=predicates[0].box,
                port=predicates[0].port,
                fn=predicates[0].fn,
            )
        ]
        universe = AtomicUniverse.compute(toy_dataplane.manager, doubled)
        assert universe.r(predicates[0].pid) == universe.r(1000)
        assert universe.verify_partition()


class TestIncrementalAdd:
    def test_add_matches_batch_compute(self, toy_dataplane):
        predicates = toy_dataplane.predicates()
        batch = AtomicUniverse.compute(toy_dataplane.manager, predicates)
        incremental = AtomicUniverse.compute(toy_dataplane.manager, predicates[:-1])
        last = predicates[-1]
        incremental.add_predicate(last.pid, last.fn)
        assert incremental.atom_count == batch.atom_count
        assert incremental.verify_partition()
        # The two universes must induce the same partition (compare the
        # sets of atom functions via BDD node ids).
        batch_nodes = {fn.node for fn in batch.atoms().values()}
        incr_nodes = {fn.node for fn in incremental.atoms().values()}
        assert batch_nodes == incr_nodes

    def test_leaf_splits_describe_the_refinement(self, toy_dataplane):
        predicates = toy_dataplane.predicates()
        universe = AtomicUniverse.compute(toy_dataplane.manager, predicates[:-1])
        before = universe.atom_ids()
        last = predicates[-1]
        splits = universe.add_predicate(last.pid, last.fn)
        assert {split.old_id for split in splits} == set(before)
        for split in splits:
            if split.is_split:
                assert split.inside_id in universe.atom_ids()
                assert split.outside_id in universe.atom_ids()
                assert split.old_id not in universe.atom_ids()
            else:
                survivor = split.inside_id or split.outside_id
                assert survivor == split.old_id

    def test_add_true_predicate_splits_nothing(self, toy_universe, toy_dataplane):
        before = toy_universe.atom_count
        splits = toy_universe.add_predicate(
            500, Function.true(toy_dataplane.manager)
        )
        assert toy_universe.atom_count == before
        assert all(not split.is_split for split in splits)
        assert toy_universe.r(500) == toy_universe.atom_ids()

    def test_add_false_predicate_has_empty_r(self, toy_universe, toy_dataplane):
        toy_universe.add_predicate(501, Function.false(toy_dataplane.manager))
        assert toy_universe.r(501) == frozenset()
        assert toy_universe.verify_partition()


class TestRemove:
    def test_remove_keeps_partition_correct(self, toy_dataplane):
        universe = AtomicUniverse.compute(
            toy_dataplane.manager, toy_dataplane.predicates()
        )
        victim = toy_dataplane.predicates()[0]
        universe.remove_predicate(victim.pid)
        assert not universe.has_predicate(victim.pid)
        # Atoms unchanged (tombstone semantics): partition still valid.
        assert universe.verify_partition()

    def test_contains_false_after_removal(self, toy_dataplane):
        universe = AtomicUniverse.compute(
            toy_dataplane.manager, toy_dataplane.predicates()
        )
        victim = toy_dataplane.predicates()[0]
        some_atom = next(iter(universe.r(victim.pid)))
        universe.remove_predicate(victim.pid)
        assert not universe.contains(victim.pid, some_atom)

    def test_snapshot_excludes_removed(self, toy_dataplane):
        universe = AtomicUniverse.compute(
            toy_dataplane.manager, toy_dataplane.predicates()
        )
        victim = toy_dataplane.predicates()[0]
        universe.remove_predicate(victim.pid)
        assert victim.pid not in dict(universe.snapshot_predicates())


class TestScaleSanity:
    def test_internet2_counts(self, internet2_classifier):
        universe = internet2_classifier.universe
        # Far fewer atoms than 2^k -- the compression the paper relies on.
        assert universe.atom_count < 2 ** min(universe.predicate_count, 20)
        assert universe.atom_count >= 10

    def test_many_predicates_equal_single_atom(self, internet2_classifier):
        """The Quick-Ordering motivation: many predicates with |R(p)| = 1."""
        universe = internet2_classifier.universe
        singletons = sum(
            1 for pid in universe.predicate_ids() if len(universe.r(pid)) == 1
        )
        assert singletons >= universe.predicate_count // 4


class TestVerifyPartitionCounting:
    """The sat-count form of verify_partition (overlap detection without
    pairwise intersections)."""

    def test_overlapping_atoms_fail_the_model_count(self, toy_dataplane):
        mgr = toy_dataplane.manager
        x0 = Function.variable(mgr, 0)
        x1 = Function.variable(mgr, 1)
        # x0 and x1 overlap but their union is not TRUE either; add the
        # complement so only overlap (double-counted models) can fail.
        universe = AtomicUniverse.assemble(
            mgr, {}, [x0, x1, ~(x0 | x1)], {}
        )
        assert not universe.verify_partition()

    def test_assemble_rejects_false_atoms(self, toy_dataplane):
        mgr = toy_dataplane.manager
        with pytest.raises(ValueError, match="satisfiable"):
            AtomicUniverse.assemble(mgr, {}, [Function.false(mgr)], {})

    def test_r_mismatch_fails(self, toy_dataplane):
        universe = AtomicUniverse.compute(
            toy_dataplane.manager, toy_dataplane.predicates()
        )
        rebuilt = AtomicUniverse.assemble(
            universe.manager,
            {pid: universe.predicate_fn(pid) for pid in universe.predicate_ids()},
            [universe.atom_fn(a) for a in sorted(universe.atom_ids())],
            {},  # every R set emptied: predicates no longer reconstitute
        )
        assert not rebuilt.verify_partition()
