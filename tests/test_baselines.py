"""Baseline tests: every comparator must agree with AP Classifier.

The strongest correctness evidence in the suite: five independently
implemented mechanisms (BDD membership walk, per-box BDD simulation,
wildcard header-space propagation, all-predicate scan, Veriflow trie) are
checked for identical forwarding behavior on random packets and random
networks.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    APLinearClassifier,
    ForwardingSimulator,
    HsaQuerier,
    PScanIdentifier,
    VeriflowTrie,
)
from repro.core.classifier import APClassifier
from repro.datasets import random_network, toy_network


def paths_of(behavior) -> list[tuple[str, ...]]:
    return sorted(tuple(path) for path in behavior.paths())


@pytest.fixture(scope="module")
def suite():
    network = toy_network()
    classifier = APClassifier.build(network)
    return {
        "network": network,
        "classifier": classifier,
        "aplinear": APLinearClassifier(classifier.dataplane, classifier.universe),
        "pscan": PScanIdentifier(classifier.dataplane),
        "fsim": ForwardingSimulator(classifier.dataplane),
        "hsa": HsaQuerier(network),
        "vtrie": VeriflowTrie(network),
    }


class TestToyAgreement:
    @pytest.mark.parametrize("name", ["aplinear", "pscan", "fsim", "hsa", "vtrie"])
    def test_agreement_on_random_packets(self, suite, name):
        rng = random.Random(1)
        baseline = suite[name]
        classifier = suite["classifier"]
        for _ in range(60):
            header = rng.getrandbits(32)
            ingress = rng.choice(["b1", "b2"])
            assert paths_of(baseline.query(header, ingress)) == paths_of(
                classifier.query(header, ingress)
            ), f"{name} disagrees at {header:#x} via {ingress}"


class TestAPLinear:
    def test_classify_matches_tree(self, suite):
        rng = random.Random(2)
        for _ in range(40):
            header = rng.getrandbits(32)
            assert suite["aplinear"].classify(header) == suite[
                "classifier"
            ].classify(header)

    def test_builds_own_universe_when_not_given(self, suite):
        standalone = APLinearClassifier(suite["classifier"].dataplane)
        assert standalone.universe.atom_count == suite["classifier"].universe.atom_count


class TestPScan:
    def test_verdicts_match_predicates(self, suite):
        rng = random.Random(3)
        header = rng.getrandbits(32)
        verdicts = suite["pscan"].verdicts(header)
        for labeled in suite["classifier"].dataplane.predicates():
            assert verdicts[labeled.pid] == labeled.fn.evaluate(header)


class TestForwardingSimulator:
    def test_counts_predicate_evaluations(self, suite):
        result = suite["fsim"].simulate(0, "b1")
        assert result.predicates_checked >= 1

    def test_counts_scale_with_path_length(self, internet2_classifier):
        simulator = ForwardingSimulator(internet2_classifier.dataplane)
        rng = random.Random(4)
        counts = [
            simulator.simulate(rng.getrandbits(32), "SEAT").predicates_checked
            for _ in range(30)
        ]
        # Averaging far more checks than the AP Tree's depth is the point
        # of Fig. 12's Forwarding Simulation bar.
        assert sum(counts) / len(counts) > internet2_classifier.tree.average_depth()


class TestVeriflowTrie:
    def test_matching_rules_against_bruteforce(self, suite):
        network = suite["network"]
        trie = suite["vtrie"]
        rng = random.Random(5)
        from repro.headerspace.header import Packet

        for _ in range(40):
            header = rng.getrandbits(32)
            packet = Packet(network.layout, header)
            expected = set()
            for name, box in network.boxes.items():
                for rule in box.table:
                    if rule.match.matches(packet):
                        expected.add((name, rule.priority, rule.out_ports))
            got = {
                (r.box, r.priority, r.out_ports)
                for r in trie.matching_rules(header)
            }
            assert got == expected

    def test_node_count_positive(self, suite):
        assert suite["vtrie"].node_count > 1
        assert "trie nodes" in repr(suite["vtrie"])


class TestHsaRegions:
    def test_acl_region_matches_acl(self):
        from repro.headerspace.fields import dst_ip_layout, parse_ipv4
        from repro.network.builder import Network
        from repro.network.rules import AclRule, Match

        network = Network(dst_ip_layout())
        network.add_box("a")
        network.attach_host("a", "p", "h")
        network.add_forwarding_rule(
            "a", Match.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8), "p", 8
        )
        acl = network.add_output_acl(
            "a",
            "p",
            [
                AclRule(Match.prefix("dst_ip", parse_ipv4("10.1.0.0"), 16), permit=False),
                AclRule(Match.any(), permit=True),
            ],
        )
        querier = HsaQuerier(network)
        region = querier._acl_region(acl)
        rng = random.Random(6)
        from repro.headerspace.header import Packet

        for _ in range(60):
            header = rng.getrandbits(32)
            assert region.matches(header) == acl.permits(
                Packet(network.layout, header)
            )


@given(
    seed=st.integers(min_value=0, max_value=40),
    packet_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_cross_agreement_on_random_networks(seed, packet_seed):
    """Property: on a random network, AP Classifier, forwarding simulation
    and HSA agree on the behavior of a random packet from a random ingress."""
    network = random_network(boxes=4, extra_links=2, prefixes=6, seed=seed)
    classifier = APClassifier.build(network)
    simulator = ForwardingSimulator(classifier.dataplane)
    hsa = HsaQuerier(network)
    rng = random.Random(packet_seed)
    header = rng.getrandbits(32)
    ingress = rng.choice(sorted(network.boxes))
    expected = paths_of(classifier.query(header, ingress))
    assert paths_of(simulator.query(header, ingress)) == expected
    assert paths_of(hsa.query(header, ingress)) == expected
