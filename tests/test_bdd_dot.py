"""Tests for the Graphviz DOT export and a concurrent query stress run."""

from __future__ import annotations

import random
import threading

from repro.bdd import BDDManager, Function, to_dot
from repro.bdd.manager import FALSE, TRUE


class TestToDot:
    def test_terminals_and_edges_present(self):
        mgr = BDDManager(3)
        fn = Function.variable(mgr, 0) & ~Function.variable(mgr, 2)
        dot = to_dot(mgr, fn.node)
        assert dot.startswith("digraph bdd {")
        assert 'label="0"' in dot and 'label="1"' in dot
        assert "style=dashed" in dot
        assert dot.rstrip().endswith("}")

    def test_var_names_used(self):
        mgr = BDDManager(2)
        fn = Function.variable(mgr, 1)
        dot = to_dot(mgr, fn.node, var_names={1: "dst_ip[0]"})
        assert "dst_ip[0]" in dot

    def test_default_var_names(self):
        mgr = BDDManager(2)
        dot = to_dot(mgr, mgr.var(0))
        assert '"x0"' in dot

    def test_terminal_only(self):
        mgr = BDDManager(2)
        dot = to_dot(mgr, TRUE)
        assert "node_T" in dot
        dot = to_dot(mgr, FALSE)
        assert "node_F" in dot

    def test_node_count_matches(self):
        mgr = BDDManager(4)
        fn = (Function.variable(mgr, 0) & Function.variable(mgr, 1)) | (
            Function.variable(mgr, 2) & Function.variable(mgr, 3)
        )
        dot = to_dot(mgr, fn.node)
        circle_nodes = dot.count("shape=circle")
        assert circle_nodes == fn.count_nodes() - 2  # minus terminals


class TestConcurrentQueries:
    def test_parallel_readers_agree(self, internet2_classifier):
        """The query path is read-only: many threads classifying the same
        trace must observe identical results (GIL or not, any shared
        mutable state in the hot path would show up here)."""
        rng = random.Random(0)
        headers = [rng.getrandbits(32) for _ in range(300)]
        expected = [internet2_classifier.tree.classify(h) for h in headers]
        failures: list[str] = []

        def worker() -> None:
            got = [internet2_classifier.tree.classify(h) for h in headers]
            if got != expected:
                failures.append("classification diverged across threads")

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
