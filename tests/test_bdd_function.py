"""Unit tests for the Function wrapper."""

import random

import pytest

from repro.bdd import BDDManager, Function


@pytest.fixture()
def mgr() -> BDDManager:
    return BDDManager(3)


@pytest.fixture()
def x(mgr):
    return Function.variable(mgr, 0)


@pytest.fixture()
def y(mgr):
    return Function.variable(mgr, 1)


class TestConstructors:
    def test_true_false(self, mgr):
        assert Function.true(mgr).is_true
        assert Function.false(mgr).is_false

    def test_cube(self, mgr):
        fn = Function.cube(mgr, {0: True, 1: False})
        assert fn.evaluate(0b100)
        assert not fn.evaluate(0b110)


class TestOperators:
    def test_and(self, x, y):
        both = x & y
        assert both.evaluate(0b110)
        assert not both.evaluate(0b100)

    def test_or(self, x, y):
        either = x | y
        assert either.evaluate(0b010)
        assert not either.evaluate(0b001)

    def test_xor(self, x, y):
        assert (x ^ y).evaluate(0b100)
        assert not (x ^ y).evaluate(0b110)

    def test_sub_is_difference(self, x, y):
        only_x = x - y
        assert only_x.evaluate(0b100)
        assert not only_x.evaluate(0b110)

    def test_invert(self, x):
        assert (~x).evaluate(0b000)
        assert not (~x).evaluate(0b100)

    def test_double_invert_is_identity(self, x):
        assert ~~x == x

    def test_ite(self, mgr, x, y):
        z = Function.variable(mgr, 2)
        picked = x.ite(y, z)
        assert picked.evaluate(0b110)  # x true -> y
        assert picked.evaluate(0b001)  # x false -> z

    def test_restrict(self, x, y):
        fn = (x & y).restrict(0, True)
        assert fn == y


class TestTypeSafety:
    def test_mixed_managers_rejected(self, x):
        other = Function.variable(BDDManager(3), 0)
        with pytest.raises(ValueError):
            _ = x & other

    def test_non_function_rejected(self, x):
        with pytest.raises(TypeError):
            _ = x & 1  # type: ignore[operator]

    def test_bool_is_ambiguous(self, x):
        with pytest.raises(TypeError):
            bool(x)


class TestPredicates:
    def test_implies(self, x, y):
        assert (x & y).implies(x)
        assert not x.implies(x & y)

    def test_disjoint(self, x, y):
        assert (x - y).disjoint(y)
        assert not x.disjoint(y)

    def test_sat_count(self, x):
        assert x.sat_count() == 4

    def test_random_sat(self, x):
        rng = random.Random(5)
        for _ in range(20):
            assert x.evaluate(x.random_sat(rng))

    def test_support(self, x, y):
        assert (x | y).support() == {0, 1}

    def test_count_nodes(self, x):
        assert x.count_nodes() == 3


class TestIdentity:
    def test_equality_is_semantic(self, mgr, x, y):
        assert (x & y) == (y & x)
        assert (x | y) != (x & y)

    def test_hashable(self, x, y):
        assert len({x & y, y & x, x | y}) == 2

    def test_repr_forms(self, mgr, x):
        assert "TRUE" in repr(Function.true(mgr))
        assert "FALSE" in repr(Function.false(mgr))
        assert "node=" in repr(x)

    def test_iter_cubes_delegates(self, x, y):
        cubes = list((x & y).iter_cubes())
        assert cubes == [{0: True, 1: True}]
