"""Unit tests for the ROBDD manager."""

import random

import pytest

from repro.bdd.manager import FALSE, TRUE, BDDManager


@pytest.fixture()
def mgr() -> BDDManager:
    return BDDManager(4)


def all_assignments(num_vars: int):
    return range(1 << num_vars)


def brute_truth(mgr: BDDManager, node: int) -> set[int]:
    return {a for a in all_assignments(mgr.num_vars) if mgr.evaluate(node, a)}


class TestConstruction:
    def test_rejects_zero_vars(self):
        with pytest.raises(ValueError):
            BDDManager(0)

    def test_terminals_are_fixed(self, mgr):
        assert FALSE == 0 and TRUE == 1
        assert mgr.is_terminal(FALSE) and mgr.is_terminal(TRUE)

    def test_var_node_semantics(self, mgr):
        node = mgr.var(1)
        # Variable 1 is bit position num_vars-1-1 = 2.
        assert mgr.evaluate(node, 0b0100)
        assert not mgr.evaluate(node, 0b0000)

    def test_nvar_is_negated_var(self, mgr):
        assert mgr.nvar(2) == mgr.negate(mgr.var(2))

    def test_reduction_merges_equal_children(self, mgr):
        # x ? y : y must collapse to y.
        y = mgr.var(1)
        assert mgr._mk(0, y, y) == y

    def test_hash_consing_shares_nodes(self, mgr):
        a = mgr.apply_and(mgr.var(0), mgr.var(1))
        b = mgr.apply_and(mgr.var(1), mgr.var(0))
        assert a == b


class TestApply:
    def test_and_truth_table(self, mgr):
        node = mgr.apply_and(mgr.var(0), mgr.var(1))
        expected = {
            a
            for a in all_assignments(4)
            if (a >> 3) & 1 and (a >> 2) & 1
        }
        assert brute_truth(mgr, node) == expected

    def test_or_truth_table(self, mgr):
        node = mgr.apply_or(mgr.var(0), mgr.var(3))
        expected = {a for a in all_assignments(4) if (a >> 3) & 1 or a & 1}
        assert brute_truth(mgr, node) == expected

    def test_xor_truth_table(self, mgr):
        node = mgr.apply_xor(mgr.var(1), mgr.var(2))
        expected = {
            a for a in all_assignments(4) if ((a >> 2) & 1) != ((a >> 1) & 1)
        }
        assert brute_truth(mgr, node) == expected

    def test_diff_is_and_not(self, mgr):
        u = mgr.apply_or(mgr.var(0), mgr.var(1))
        v = mgr.var(1)
        assert mgr.apply_diff(u, v) == mgr.apply_and(u, mgr.negate(v))

    def test_and_identities(self, mgr):
        x = mgr.var(0)
        assert mgr.apply_and(x, TRUE) == x
        assert mgr.apply_and(x, FALSE) == FALSE
        assert mgr.apply_and(x, x) == x

    def test_or_identities(self, mgr):
        x = mgr.var(0)
        assert mgr.apply_or(x, FALSE) == x
        assert mgr.apply_or(x, TRUE) == TRUE
        assert mgr.apply_or(x, x) == x

    def test_complementation(self, mgr):
        x = mgr.var(2)
        assert mgr.apply_and(x, mgr.negate(x)) == FALSE
        assert mgr.apply_or(x, mgr.negate(x)) == TRUE


class TestNegate:
    def test_involution(self, mgr):
        node = mgr.apply_or(mgr.var(0), mgr.apply_and(mgr.var(1), mgr.var(3)))
        assert mgr.negate(mgr.negate(node)) == node

    def test_terminal_negation(self, mgr):
        assert mgr.negate(TRUE) == FALSE
        assert mgr.negate(FALSE) == TRUE

    def test_de_morgan(self, mgr):
        x, y = mgr.var(0), mgr.var(1)
        left = mgr.negate(mgr.apply_and(x, y))
        right = mgr.apply_or(mgr.negate(x), mgr.negate(y))
        assert left == right


class TestIte:
    def test_ite_matches_formula(self, mgr):
        f = mgr.var(0)
        g = mgr.var(1)
        h = mgr.var(2)
        via_ite = mgr.ite(f, g, h)
        manual = mgr.apply_or(
            mgr.apply_and(f, g), mgr.apply_and(mgr.negate(f), h)
        )
        assert via_ite == manual

    def test_ite_shortcuts(self, mgr):
        g, h = mgr.var(1), mgr.var(2)
        assert mgr.ite(TRUE, g, h) == g
        assert mgr.ite(FALSE, g, h) == h
        assert mgr.ite(mgr.var(0), g, g) == g
        assert mgr.ite(mgr.var(0), TRUE, FALSE) == mgr.var(0)


class TestImplies:
    def test_implies_subset(self, mgr):
        narrow = mgr.apply_and(mgr.var(0), mgr.var(1))
        wide = mgr.var(0)
        assert mgr.implies(narrow, wide)
        assert not mgr.implies(wide, narrow)

    def test_everything_implies_true(self, mgr):
        assert mgr.implies(mgr.var(3), TRUE)
        assert mgr.implies(FALSE, mgr.var(3))


class TestCube:
    def test_cube_semantics(self, mgr):
        node = mgr.cube({0: True, 2: False})
        expected = {
            a for a in all_assignments(4) if (a >> 3) & 1 and not (a >> 1) & 1
        }
        assert brute_truth(mgr, node) == expected

    def test_empty_cube_is_true(self, mgr):
        assert mgr.cube({}) == TRUE

    def test_cube_equals_apply_chain(self, mgr):
        node = mgr.cube({1: True, 3: True})
        assert node == mgr.apply_and(mgr.var(1), mgr.var(3))


class TestRestrict:
    def test_restrict_pins_variable(self, mgr):
        node = mgr.apply_or(mgr.var(0), mgr.var(1))
        assert mgr.restrict(node, 0, True) == TRUE
        assert mgr.restrict(node, 0, False) == mgr.var(1)

    def test_restrict_absent_variable_is_noop(self, mgr):
        node = mgr.var(2)
        assert mgr.restrict(node, 0, True) == node
        assert mgr.restrict(node, 0, False) == node


class TestCounting:
    def test_sat_count_terminals(self, mgr):
        assert mgr.sat_count(FALSE) == 0
        assert mgr.sat_count(TRUE) == 16

    def test_sat_count_single_var(self, mgr):
        assert mgr.sat_count(mgr.var(0)) == 8

    def test_sat_count_matches_brute_force(self, mgr):
        node = mgr.apply_or(
            mgr.apply_and(mgr.var(0), mgr.var(2)), mgr.nvar(3)
        )
        assert mgr.sat_count(node) == len(brute_truth(mgr, node))

    def test_count_nodes_single_var(self, mgr):
        # var node + two terminals.
        assert mgr.count_nodes(mgr.var(0)) == 3

    def test_support(self, mgr):
        node = mgr.apply_and(mgr.var(0), mgr.var(3))
        assert mgr.support(node) == {0, 3}
        assert mgr.support(TRUE) == set()


class TestRandomSat:
    def test_samples_satisfy(self, mgr):
        rng = random.Random(7)
        node = mgr.apply_or(mgr.apply_and(mgr.var(0), mgr.var(1)), mgr.var(3))
        for _ in range(50):
            assert mgr.evaluate(node, mgr.random_sat(node, rng))

    def test_sampling_false_raises(self, mgr):
        with pytest.raises(ValueError):
            mgr.random_sat(FALSE, random.Random(1))

    def test_sampling_is_roughly_uniform(self, mgr):
        rng = random.Random(11)
        node = mgr.var(0)  # 8 models
        counts = {}
        for _ in range(4000):
            sample = mgr.random_sat(node, rng)
            counts[sample] = counts.get(sample, 0) + 1
        assert set(counts) == brute_truth(mgr, node)
        assert min(counts.values()) > 300  # expectation 500 each

    def test_sampling_true_covers_space(self, mgr):
        rng = random.Random(3)
        samples = {mgr.random_sat(TRUE, rng) for _ in range(600)}
        assert len(samples) == 16


class TestIterCubes:
    def test_cubes_cover_function(self, mgr):
        node = mgr.apply_or(mgr.apply_and(mgr.var(0), mgr.var(1)), mgr.nvar(2))
        covered = set()
        for cube in mgr.iter_cubes(node):
            rebuilt = mgr.cube(cube)
            covered |= brute_truth(mgr, rebuilt)
        assert covered == brute_truth(mgr, node)

    def test_true_yields_empty_cube(self, mgr):
        assert list(mgr.iter_cubes(TRUE)) == [{}]

    def test_false_yields_nothing(self, mgr):
        assert list(mgr.iter_cubes(FALSE)) == []


class TestCacheStats:
    def test_reports_growth(self, mgr):
        before = mgr.cache_stats()["nodes"]
        mgr.apply_and(mgr.var(0), mgr.apply_or(mgr.var(1), mgr.var(2)))
        after = mgr.cache_stats()
        assert after["nodes"] > before
        assert after["apply_cache"] > 0
