"""Property-based tests: the BDD engine against brute-force semantics.

Random Boolean expressions are evaluated both through the BDD and by
direct interpretation over every assignment; they must agree exactly.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDDManager, Function

NUM_VARS = 5


def leaf(mgr: BDDManager, index: int) -> tuple[Function, set[int]]:
    fn = Function.variable(mgr, index)
    truth = {
        a for a in range(1 << NUM_VARS) if (a >> (NUM_VARS - 1 - index)) & 1
    }
    return fn, truth


# An expression tree is encoded as nested tuples of ops and var indices.
expression = st.recursive(
    st.integers(min_value=0, max_value=NUM_VARS - 1),
    lambda children: st.one_of(
        st.tuples(st.just("not"), children),
        st.tuples(st.sampled_from(["and", "or", "xor", "diff"]), children, children),
    ),
    max_leaves=12,
)


def build(mgr: BDDManager, expr) -> tuple[Function, set[int]]:
    if isinstance(expr, int):
        return leaf(mgr, expr)
    if expr[0] == "not":
        fn, truth = build(mgr, expr[1])
        return ~fn, set(range(1 << NUM_VARS)) - truth
    op, left, right = expr
    lf, lt = build(mgr, left)
    rf, rt = build(mgr, right)
    if op == "and":
        return lf & rf, lt & rt
    if op == "or":
        return lf | rf, lt | rt
    if op == "xor":
        return lf ^ rf, lt ^ rt
    return lf - rf, lt - rt


@given(expression)
@settings(max_examples=200)
def test_bdd_matches_brute_force(expr):
    mgr = BDDManager(NUM_VARS)
    fn, truth = build(mgr, expr)
    computed = {a for a in range(1 << NUM_VARS) if fn.evaluate(a)}
    assert computed == truth


@given(expression)
@settings(max_examples=150)
def test_sat_count_matches_truth_size(expr):
    mgr = BDDManager(NUM_VARS)
    fn, truth = build(mgr, expr)
    assert fn.sat_count() == len(truth)


@given(expression, expression)
@settings(max_examples=100)
def test_de_morgan_laws(left, right):
    mgr = BDDManager(NUM_VARS)
    lf, _ = build(mgr, left)
    rf, _ = build(mgr, right)
    assert ~(lf & rf) == (~lf | ~rf)
    assert ~(lf | rf) == (~lf & ~rf)


@given(expression)
@settings(max_examples=100)
def test_canonicity_same_truth_same_node(expr):
    """Two syntactic routes to one function must share a node id."""
    mgr = BDDManager(NUM_VARS)
    fn, _ = build(mgr, expr)
    rebuilt = ~~fn  # a non-trivial rewriting that preserves semantics
    assert rebuilt.node == fn.node


@given(expression, st.integers(min_value=0, max_value=NUM_VARS - 1), st.booleans())
@settings(max_examples=100)
def test_restrict_semantics(expr, var, value):
    mgr = BDDManager(NUM_VARS)
    fn, truth = build(mgr, expr)
    restricted = fn.restrict(var, value)
    bit = NUM_VARS - 1 - var
    for assignment in range(1 << NUM_VARS):
        forced = (assignment | (1 << bit)) if value else (assignment & ~(1 << bit))
        assert restricted.evaluate(assignment) == (forced in truth)


@given(expression, st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=100)
def test_random_sat_always_satisfies(expr, seed):
    mgr = BDDManager(NUM_VARS)
    fn, truth = build(mgr, expr)
    if not truth:
        return
    sample = fn.random_sat(random.Random(seed))
    assert sample in truth


@given(expression)
@settings(max_examples=100)
def test_iter_cubes_partition(expr):
    """Cubes must be disjoint and exactly cover the function."""
    mgr = BDDManager(NUM_VARS)
    fn, truth = build(mgr, expr)
    seen: set[int] = set()
    for cube in fn.iter_cubes():
        members = {
            a
            for a in range(1 << NUM_VARS)
            if all(
                bool((a >> (NUM_VARS - 1 - var)) & 1) == pol
                for var, pol in cube.items()
            )
        }
        assert not (members & seen), "cubes overlap"
        seen |= members
    assert seen == truth
