"""Tests for BDD quantification (exists / forall)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDDManager, Function

NUM_VARS = 5


def from_points(mgr: BDDManager, points: set[int]) -> Function:
    fn = Function.false(mgr)
    for point in points:
        fn = fn | Function.cube(
            mgr, {i: bool((point >> (NUM_VARS - 1 - i)) & 1) for i in range(NUM_VARS)}
        )
    return fn


def truth(fn: Function) -> set[int]:
    return {a for a in range(1 << NUM_VARS) if fn.evaluate(a)}


class TestBasics:
    def test_exists_single_variable(self):
        mgr = BDDManager(2)
        x, y = Function.variable(mgr, 0), Function.variable(mgr, 1)
        fn = x & y
        assert fn.exists({0}) == y
        assert fn.exists({0, 1}).is_true

    def test_forall_single_variable(self):
        mgr = BDDManager(2)
        x, y = Function.variable(mgr, 0), Function.variable(mgr, 1)
        fn = x | y
        assert fn.forall({0}) == y
        assert (Function.variable(mgr, 0)).forall({0}).is_false

    def test_empty_set_is_identity(self):
        mgr = BDDManager(3)
        fn = Function.variable(mgr, 1)
        assert fn.exists(set()) == fn
        assert fn.forall(set()) == fn

    def test_field_projection_use_case(self):
        """Project a two-field predicate onto its second field."""
        mgr = BDDManager(4)  # fields: a = vars 0-1, b = vars 2-3
        a0 = Function.variable(mgr, 0)
        b0 = Function.variable(mgr, 2)
        fn = (a0 & b0) | (~a0 & ~b0)
        onto_b = fn.exists({0, 1})
        # For any 'a' value some packet exists, for both b0 values.
        assert onto_b.is_true


points_sets = st.sets(
    st.integers(min_value=0, max_value=(1 << NUM_VARS) - 1), max_size=20
)
var_sets = st.sets(st.integers(min_value=0, max_value=NUM_VARS - 1), max_size=4)


@given(points=points_sets, variables=var_sets)
@settings(max_examples=120)
def test_exists_matches_semantics(points, variables):
    mgr = BDDManager(NUM_VARS)
    fn = from_points(mgr, points)
    quantified = fn.exists(variables)
    masks = [1 << (NUM_VARS - 1 - v) for v in variables]
    for assignment in range(1 << NUM_VARS):
        expected = any(
            completion in points
            for completion in _completions(assignment, masks)
        )
        assert quantified.evaluate(assignment) == expected


@given(points=points_sets, variables=var_sets)
@settings(max_examples=120)
def test_forall_matches_semantics(points, variables):
    mgr = BDDManager(NUM_VARS)
    fn = from_points(mgr, points)
    quantified = fn.forall(variables)
    masks = [1 << (NUM_VARS - 1 - v) for v in variables]
    for assignment in range(1 << NUM_VARS):
        expected = all(
            completion in points
            for completion in _completions(assignment, masks)
        )
        assert quantified.evaluate(assignment) == expected


@given(points=points_sets, variables=var_sets)
@settings(max_examples=80)
def test_duality(points, variables):
    """forall x. f == ~exists x. ~f"""
    mgr = BDDManager(NUM_VARS)
    fn = from_points(mgr, points)
    assert fn.forall(variables) == ~((~fn).exists(variables))


def _completions(assignment: int, masks: list[int]):
    """All assignments agreeing with ``assignment`` outside the masks."""
    base = assignment
    for mask in masks:
        base &= ~mask
    combos = [base]
    for mask in masks:
        combos = [c | bits for c in combos for bits in (0, mask)]
    return combos
