"""Round-trip tests for BDD serialization."""

import pytest

from repro.bdd import (
    BDDManager,
    Function,
    dump_functions,
    dump_node,
    load_functions,
    load_node,
)
from repro.bdd.manager import FALSE, TRUE


@pytest.fixture()
def mgr() -> BDDManager:
    return BDDManager(6)


def sample_function(mgr: BDDManager) -> Function:
    x0 = Function.variable(mgr, 0)
    x2 = Function.variable(mgr, 2)
    x5 = Function.variable(mgr, 5)
    return (x0 & x2) | (~x0 & x5)


class TestNodeRoundTrip:
    def test_same_manager(self, mgr):
        fn = sample_function(mgr)
        triples = dump_node(mgr, fn.node)
        assert load_node(mgr, triples) == fn.node

    def test_fresh_manager(self, mgr):
        fn = sample_function(mgr)
        triples = dump_node(mgr, fn.node)
        other = BDDManager(6)
        rebuilt = load_node(other, triples)
        for assignment in range(1 << 6):
            assert other.evaluate(rebuilt, assignment) == fn.evaluate(assignment)

    def test_terminals(self, mgr):
        for terminal in (FALSE, TRUE):
            triples = dump_node(mgr, terminal)
            assert load_node(BDDManager(6), triples) == terminal

    def test_empty_payload_rejected(self, mgr):
        with pytest.raises(ValueError):
            load_node(mgr, [])

    def test_missing_root_marker_rejected(self, mgr):
        fn = sample_function(mgr)
        triples = dump_node(mgr, fn.node)
        with pytest.raises(ValueError):
            load_node(BDDManager(6), triples[:-1] + [(0, -2, -1)])


class TestFunctionsRoundTrip:
    def test_many_functions_share_structure(self, mgr):
        fns = [sample_function(mgr), Function.variable(mgr, 1), Function.true(mgr)]
        text = dump_functions(fns)
        loaded = load_functions(text)
        assert len(loaded) == 3
        for original, copy in zip(fns, loaded):
            for assignment in range(1 << 6):
                assert copy.evaluate(assignment) == original.evaluate(assignment)

    def test_empty_list(self):
        assert load_functions(dump_functions([])) == []

    def test_mixed_managers_rejected(self, mgr):
        other = BDDManager(6)
        with pytest.raises(ValueError):
            dump_functions([Function.variable(mgr, 0), Function.variable(other, 0)])

    def test_wrong_width_manager_rejected(self, mgr):
        text = dump_functions([sample_function(mgr)])
        with pytest.raises(ValueError):
            load_functions(text, BDDManager(3))

    def test_into_existing_manager_preserves_identity(self, mgr):
        fn = sample_function(mgr)
        text = dump_functions([fn])
        (loaded,) = load_functions(text, mgr)
        assert loaded.node == fn.node


class TestDeepBDDs:
    def test_chain_cube_beyond_recursion_limit(self):
        """A cube over thousands of variables serializes iteratively.

        The BDD of a full cube is a chain with one node per constrained
        variable -- a recursive postorder would blow the interpreter's
        recursion limit (default 1000) long before this width.
        """
        import sys

        width = sys.getrecursionlimit() + 3000
        mgr = BDDManager(width)
        fn = Function.cube(mgr, {var: bool(var % 2) for var in range(width)})
        triples = dump_node(mgr, fn.node)
        assert len(triples) == width + 1  # one per variable + root marker
        other = BDDManager(width)
        rebuilt = load_node(other, triples)
        witness = sum(1 << (width - 1 - v) for v in range(width) if v % 2)
        assert other.evaluate_from(rebuilt, witness)
        assert not other.evaluate_from(rebuilt, witness ^ 1)
