"""Stage-2 behavior computation tests: paths, drops, multicast, loops."""

from __future__ import annotations

import random

import pytest

from repro.core.behavior import (
    DROP_INPUT_ACL,
    DROP_NO_ROUTE,
    DROP_OUTPUT_ACL,
    BehaviorComputer,
)
from repro.core.atomic import AtomicUniverse
from repro.core.classifier import APClassifier
from repro.datasets import toy_network
from repro.headerspace.fields import dst_ip_layout, parse_ipv4
from repro.headerspace.header import Packet
from repro.network.builder import Network
from repro.network.dataplane import DataPlane
from repro.network.rules import AclRule, Match


def behavior_for(network: Network, dst: str, ingress: str):
    classifier = APClassifier.build(network)
    packet = Packet.of(network.layout, dst_ip=dst)
    return classifier.query(packet, ingress_box=ingress)


class TestToyPaths:
    def test_forwarded_through_b2(self):
        behavior = behavior_for(toy_network(), "10.2.0.1", "b1")
        assert behavior.paths() == [["b1", "b2", "h2"]]
        assert behavior.delivered_hosts() == {"h2"}
        assert not behavior.is_dropped_everywhere

    def test_local_delivery(self):
        behavior = behavior_for(toy_network(), "10.1.0.1", "b1")
        assert behavior.paths() == [["b1", "h1"]]

    def test_dropped_at_b1_but_deliverable_at_b2(self):
        """The paper's a5: dropped if entering at b1, reaches h2 from b2."""
        network = toy_network()
        at_b1 = behavior_for(network, "10.3.0.1", "b1")
        assert at_b1.is_dropped_everywhere
        assert at_b1.drops() == [("b1", DROP_NO_ROUTE)]
        at_b2 = behavior_for(network, "10.3.0.1", "b2")
        assert at_b2.delivered_hosts() == {"h2"}

    def test_boxes_traversed(self):
        behavior = behavior_for(toy_network(), "10.2.0.1", "b1")
        assert behavior.boxes_traversed() == ["b1", "b2"]

    def test_unknown_ingress_rejected(self):
        network = toy_network()
        classifier = APClassifier.build(network)
        with pytest.raises(KeyError):
            classifier.query(0, ingress_box="nope")


def acl_network() -> Network:
    network = Network(dst_ip_layout(), name="acl")
    network.add_box("a")
    network.add_box("b")
    network.link("a", "to_b", "b", "from_a")
    network.attach_host("b", "cust", "h")
    network.add_forwarding_rule(
        "a", Match.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8), "to_b", 8
    )
    network.add_forwarding_rule(
        "b", Match.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8), "cust", 8
    )
    return network


class TestAclDrops:
    def test_input_acl_drop(self):
        network = acl_network()
        network.add_input_acl(
            "b",
            "from_a",
            [AclRule(Match.prefix("dst_ip", parse_ipv4("10.9.0.0"), 16), permit=False)],
            default_permit=True,
        )
        blocked = behavior_for(network, "10.9.0.1", "a")
        assert ("b", DROP_INPUT_ACL) in blocked.drops()
        assert blocked.is_dropped_everywhere
        allowed = behavior_for(network, "10.8.0.1", "a")
        assert allowed.delivered_hosts() == {"h"}

    def test_output_acl_drop(self):
        network = acl_network()
        network.add_output_acl(
            "b",
            "cust",
            [AclRule(Match.prefix("dst_ip", parse_ipv4("10.9.0.0"), 16), permit=False)],
            default_permit=True,
        )
        blocked = behavior_for(network, "10.9.0.1", "a")
        assert ("b", DROP_OUTPUT_ACL) in blocked.drops()
        assert blocked.is_dropped_everywhere

    def test_ingress_port_matters(self):
        network = acl_network()
        network.add_input_acl(
            "a", "uplink", [AclRule(Match.any(), permit=False)]
        )
        classifier = APClassifier.build(network)
        packet = Packet.of(network.layout, dst_ip="10.1.1.1")
        via_acl = classifier.query(packet, "a", in_port="uplink")
        assert via_acl.is_dropped_everywhere
        direct = classifier.query(packet, "a")
        assert direct.delivered_hosts() == {"h"}


class TestMulticast:
    def test_two_copies_delivered(self):
        network = Network(dst_ip_layout(), name="mcast")
        network.add_box("r")
        network.attach_host("r", "p1", "h1")
        network.attach_host("r", "p2", "h2")
        network.add_forwarding_rule(
            "r",
            Match.prefix("dst_ip", parse_ipv4("224.0.0.0"), 4),
            ("p1", "p2"),
            priority=4,
        )
        behavior = behavior_for(network, "224.1.1.1", "r")
        assert behavior.delivered_hosts() == {"h1", "h2"}
        assert len(behavior.paths()) == 2


class TestLoops:
    def test_forwarding_loop_detected(self):
        network = Network(dst_ip_layout(), name="loop")
        for name in ("a", "b", "c"):
            network.add_box(name)
        network.link("a", "to_b", "b", "from_a")
        network.link("b", "to_c", "c", "from_b")
        network.link("c", "to_a", "a", "from_c")
        match = Match.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8)
        network.add_forwarding_rule("a", match, "to_b", 8)
        network.add_forwarding_rule("b", match, "to_c", 8)
        network.add_forwarding_rule("c", match, "to_a", 8)
        behavior = behavior_for(network, "10.1.1.1", "a")
        assert behavior.has_loop
        assert behavior.is_dropped_everywhere

    def test_no_false_loop_on_diamond(self):
        """Revisiting a box on a *different* branch is not a loop."""
        network = Network(dst_ip_layout(), name="diamond")
        for name in ("s", "l", "r", "t"):
            network.add_box(name)
        network.link("s", "to_l", "l", "from_s")
        network.link("s", "to_r", "r", "from_s")
        network.link("l", "to_t", "t", "from_l")
        network.link("r", "to_t", "t", "from_r")
        network.attach_host("t", "cust", "h")
        match = Match.prefix("dst_ip", parse_ipv4("224.0.0.0"), 4)
        network.add_forwarding_rule("s", match, ("to_l", "to_r"), 4)
        network.add_forwarding_rule("l", match, "to_t", 4)
        network.add_forwarding_rule("r", match, "to_t", 4)
        network.add_forwarding_rule("t", match, "cust", 4)
        behavior = behavior_for(network, "224.0.0.1", "s")
        assert not behavior.has_loop
        assert behavior.delivered_hosts() == {"h"}
        assert len(behavior.paths()) == 2


class TestEgressEdge:
    def test_unconnected_port_is_egress(self):
        network = Network(dst_ip_layout(), name="egress")
        network.add_box("a")
        network.add_forwarding_rule(
            "a", Match.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8), "upstream", 8
        )
        behavior = behavior_for(network, "10.1.1.1", "a")
        assert behavior.paths() == [["a"]]
        assert behavior.root.edges[0].stopped == "egress"


class TestAgainstForwardingSimulation:
    def test_internet2_agreement(self, internet2_classifier):
        from repro.baselines import ForwardingSimulator

        rng = random.Random(8)
        simulator = ForwardingSimulator(internet2_classifier.dataplane)
        boxes = sorted(internet2_classifier.dataplane.network.boxes)
        for _ in range(40):
            header = rng.getrandbits(32)
            ingress = rng.choice(boxes)
            fast = internet2_classifier.query(header, ingress)
            slow = simulator.query(header, ingress)
            assert sorted(map(tuple, fast.paths())) == sorted(
                map(tuple, slow.paths())
            )

    def test_stage2_only_entry_point(self, internet2_classifier):
        rng = random.Random(9)
        header = rng.getrandbits(32)
        atom_id = internet2_classifier.classify(header)
        behavior = internet2_classifier.behavior_of_atom(atom_id, "CHIC")
        assert behavior.atom_id == atom_id


class TestBehaviorComputerDirect:
    def test_computer_over_toy(self, toy_dataplane, toy_universe):
        computer = BehaviorComputer(toy_dataplane, toy_universe)
        atom_id = toy_universe.classify(parse_ipv4("10.1.0.5"))
        behavior = computer.compute(atom_id, "b1")
        assert behavior.delivered_hosts() == {"h1"}

    def test_repr(self, toy_dataplane, toy_universe):
        computer = BehaviorComputer(toy_dataplane, toy_universe)
        atom_id = toy_universe.classify(parse_ipv4("10.1.0.5"))
        assert "Behavior" in repr(computer.compute(atom_id, "b1"))
