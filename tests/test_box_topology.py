"""Unit tests for boxes and the topology graph."""

import pytest

from repro.headerspace.fields import dst_ip_layout, parse_ipv4
from repro.headerspace.header import Packet
from repro.network.box import Box, PortRef
from repro.network.rules import AclRule, ForwardingRule, Match
from repro.network.tables import Acl, ForwardingTable
from repro.network.topology import Topology


def packet(text: str) -> Packet:
    return Packet.of(dst_ip_layout(), dst_ip=text)


def simple_box() -> Box:
    table = ForwardingTable(
        [
            ForwardingRule(
                Match.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8),
                ("out",),
                priority=8,
            )
        ]
    )
    return Box("b", table)


class TestBox:
    def test_name_required(self):
        with pytest.raises(ValueError):
            Box("")

    def test_forward_without_acls(self):
        box = simple_box()
        assert box.forward(packet("10.1.2.3")) == ("out",)
        assert box.forward(packet("11.0.0.0")) == ()

    def test_input_acl_drops(self):
        box = simple_box()
        box.set_input_acl("in", Acl([AclRule(Match.any(), permit=False)], default_permit=False))
        assert box.forward(packet("10.1.2.3"), in_port="in") == ()
        # Other input ports are unaffected.
        assert box.forward(packet("10.1.2.3"), in_port="other") == ("out",)

    def test_output_acl_filters_port(self):
        box = simple_box()
        box.set_output_acl(
            "out",
            Acl([AclRule(Match.prefix("dst_ip", parse_ipv4("10.9.0.0"), 16), permit=False)],
                default_permit=True),
        )
        assert box.forward(packet("10.1.0.0")) == ("out",)
        assert box.forward(packet("10.9.0.1")) == ()

    def test_admits_and_emits_default_open(self):
        box = simple_box()
        assert box.admits(packet("10.0.0.1"), "any_port")
        assert box.emits(packet("10.0.0.1"), "any_port")

    def test_repr(self):
        assert "1 rules" in repr(simple_box())


class TestPortRef:
    def test_ordering_and_str(self):
        a = PortRef("a", "p1")
        b = PortRef("b", "p0")
        assert a < b
        assert str(a) == "a:p1"


class TestTopology:
    def test_link_and_next_hop(self):
        topo = Topology()
        topo.add_link("a", "east", "b", "west")
        assert topo.next_hop("a", "east") == PortRef("b", "west")
        assert topo.next_hop("b", "west") is None  # links are directed

    def test_host_attachment(self):
        topo = Topology()
        topo.attach_host("a", "cust", "h1")
        assert topo.host_at("a", "cust") == "h1"
        assert topo.next_hop("a", "cust") is None

    def test_port_reuse_rejected(self):
        topo = Topology()
        topo.add_link("a", "east", "b", "west")
        with pytest.raises(ValueError):
            topo.add_link("a", "east", "c", "south")
        with pytest.raises(ValueError):
            topo.attach_host("a", "east", "h1")

    def test_boxes_collects_endpoints(self):
        topo = Topology()
        topo.register_box("lonely")
        topo.add_link("a", "e", "b", "w")
        topo.attach_host("c", "p", "h")
        assert topo.boxes == {"lonely", "a", "b", "c"}

    def test_degree(self):
        topo = Topology()
        topo.add_link("a", "e", "b", "w")
        topo.attach_host("a", "cust", "h")
        assert topo.degree("a") == 2
        assert topo.degree("b") == 0

    def test_iteration(self):
        topo = Topology()
        topo.add_link("a", "e", "b", "w")
        topo.attach_host("a", "cust", "h")
        assert len(list(topo.links())) == 1
        assert len(list(topo.hosts())) == 1

    def test_repr(self):
        topo = Topology()
        topo.add_link("a", "e", "b", "w")
        assert "1 links" in repr(topo)
