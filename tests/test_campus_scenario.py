"""End-to-end campus scenario: every subsystem in one realistic build.

A three-zone campus assembled from textual configs with ACLs and a NAT
middlebox, driven through the complete lifecycle: build, verify a policy
suite, apply an update inside a transaction, detect a regression with
behavior deltas, reconstruct, snapshot, and restore.
"""

from __future__ import annotations

import random

import pytest

from repro.core.classifier import APClassifier
from repro.core.delta import behavior_delta
from repro.core.middlebox import (
    DETERMINISTIC,
    FlowEntry,
    HeaderRewrite,
    Middlebox,
    MiddleboxAwareComputer,
    MiddleboxTable,
    RewriteBranch,
)
from repro.core.propagation import AtomPropagation
from repro.persist import classifier_from_json, classifier_to_json
from repro.core.verifier import NetworkVerifier
from repro.headerspace.fields import five_tuple_layout, parse_ipv4
from repro.headerspace.header import Packet
from repro.network.builder import Network
from repro.network.parsers import parse_acl, parse_routes
from repro.network.rules import ForwardingRule, Match

CORE_ROUTES = """
route 10.10.0.0/16 -> to_eng      # engineering zone
route 10.20.0.0/16 -> to_dorm     # dorm zone
route 10.30.0.0/16 -> to_dmz      # servers
"""

EDGE_TEMPLATE = """
route {subnet} -> cust
route 0.0.0.0/0 -> to_core
"""

DMZ_ACL = """
deny   tcp any any eq 23
deny   ip 10.20.0.0/16 any       # dorms can't reach servers directly
permit ip any any
"""


@pytest.fixture(scope="module")
def campus() -> Network:
    network = Network(five_tuple_layout(), name="campus")
    for box in ("core", "eng", "dorm", "dmz"):
        network.add_box(box)
    for zone in ("eng", "dorm", "dmz"):
        network.link("core", f"to_{zone}", zone, "from_core")
        network.link(zone, "to_core", "core", f"from_{zone}")
    network.attach_host("eng", "cust", "eng_hosts")
    network.attach_host("dorm", "cust", "dorm_hosts")
    network.attach_host("dmz", "cust", "servers")

    for rule in parse_routes(CORE_ROUTES):
        network.boxes["core"].table.add(rule)
    for zone, subnet in (
        ("eng", "10.10.0.0/16"),
        ("dorm", "10.20.0.0/16"),
        ("dmz", "10.30.0.0/16"),
    ):
        for rule in parse_routes(EDGE_TEMPLATE.format(subnet=subnet)):
            network.boxes[zone].table.add(rule)
    network.boxes["dmz"].set_input_acl(
        "from_core", parse_acl(DMZ_ACL, network.layout)
    )
    return network


@pytest.fixture(scope="module")
def campus_classifier(campus) -> APClassifier:
    return APClassifier.build(campus)


class TestPolicySuite:
    def test_engineering_reaches_servers(self, campus_classifier):
        packet = Packet.of(
            campus_classifier.dataplane.layout,
            src_ip="10.10.1.1",
            dst_ip="10.30.0.5",
            dst_port=443,
            proto=6,
        )
        behavior = campus_classifier.query(packet, "eng")
        assert behavior.delivered_hosts() == {"servers"}
        assert behavior.boxes_traversed() == ["eng", "core", "dmz"]

    def test_dorms_blocked_from_servers(self, campus_classifier):
        packet = Packet.of(
            campus_classifier.dataplane.layout,
            src_ip="10.20.1.1",
            dst_ip="10.30.0.5",
        )
        behavior = campus_classifier.query(packet, "dorm")
        assert behavior.is_dropped_everywhere
        assert ("dmz", "input_acl") in behavior.drops()

    def test_telnet_blocked_for_everyone(self, campus_classifier):
        verifier = NetworkVerifier.from_classifier(campus_classifier)
        # Exhaustive: no atom with dst_port == 23 reaches the servers.
        layout = campus_classifier.dataplane.layout
        telnet = Match.prefix("dst_port", 23, 16).with_prefix(
            "dst_ip", parse_ipv4("10.30.0.0"), 16
        ).with_prefix("proto", 6, 8)
        for atom_id in campus_classifier.atoms_matching(telnet):
            behavior = verifier._behavior(atom_id, "eng")
            assert "servers" not in behavior.delivered_hosts()

    def test_propagation_agrees_with_verifier(self, campus_classifier):
        verifier = NetworkVerifier.from_classifier(campus_classifier)
        propagation = AtomPropagation.from_classifier(campus_classifier)
        for ingress in ("eng", "dorm", "core"):
            outcome = propagation.propagate(ingress)
            for host in ("eng_hosts", "dorm_hosts", "servers"):
                assert outcome.atoms_at_host.get(host, frozenset()) == (
                    verifier.atoms_reaching_host(ingress, host)
                )


class TestChangeManagement:
    def test_transaction_guards_policy(self, campus):
        classifier = APClassifier.build(campus)
        verifier_check = (
            lambda clf: not NetworkVerifier.from_classifier(clf).find_loops("core")
        )
        # A legitimate update commits fine.
        ok_rule = ForwardingRule(
            Match.prefix("dst_ip", parse_ipv4("10.30.9.0"), 24),
            ("to_dmz",),
            priority=24,
        )
        with classifier.transaction() as txn:
            txn.insert_rule("core", ok_rule)
            txn.ensure(verifier_check)
        classifier.remove_rule("core", ok_rule)

    def test_delta_pinpoints_regression(self, campus):
        baseline = APClassifier.build(campus)
        # Regression: someone fat-fingers a core route for eng's /16.
        # Clone the network so the shared fixture stays pristine.
        from repro.network.dataplane import DataPlane
        from repro.network.serialize import network_from_json, network_to_json

        clone = network_from_json(network_to_json(campus))
        broken_dp = DataPlane(clone, baseline.dataplane.manager)
        broken_dp.insert_rule(
            "core",
            ForwardingRule(
                Match.prefix("dst_ip", parse_ipv4("10.10.0.0"), 16),
                ("to_dorm",),
                priority=20,
            ),
        )
        broken = APClassifier.from_dataplane(broken_dp)
        deltas = behavior_delta(baseline, broken, "dmz")
        assert deltas
        assert any(delta.diverges_at == "core" for delta in deltas)

    def test_snapshot_round_trip_preserves_policy(self, campus_classifier):
        restored = classifier_from_json(classifier_to_json(campus_classifier))
        packet = Packet.of(
            restored.dataplane.layout, src_ip="10.20.1.1", dst_ip="10.30.0.5"
        )
        assert restored.query(packet, "dorm").is_dropped_everywhere


class TestNatIntegration:
    def test_nat_exposes_servers_via_public_prefix(self, campus_classifier):
        """A DNAT middlebox at the dmz maps 198.51.100.0/24 onto the
        server subnet; public-addressed packets then get delivered."""
        layout = campus_classifier.dataplane.layout
        public = Packet.of(layout, src_ip="10.10.1.1", dst_ip="198.51.100.7",
                           dst_port=443, proto=6)
        internal = Packet.of(layout, src_ip="10.10.1.1", dst_ip="10.30.0.7",
                             dst_port=443, proto=6)
        # Without NAT: no route for the public prefix.
        plain = campus_classifier.query(public, "eng")
        assert plain.is_dropped_everywhere

        entry = FlowEntry.from_match(
            campus_classifier,
            Match.prefix("dst_ip", parse_ipv4("198.51.100.0"), 24),
            DETERMINISTIC,
            (
                RewriteBranch(
                    HeaderRewrite(
                        (1 << layout.total_width) - 1, internal.value
                    ),
                    1.0,
                    campus_classifier.classify(internal),
                ),
            ),
        )
        computer = MiddleboxAwareComputer(
            campus_classifier,
            {"eng": Middlebox("DNAT", MiddleboxTable([entry]))},
        )
        (outcome,) = computer.query(public.value, "eng")
        assert outcome.behavior.delivered_hosts() == {"servers"}
