"""Facade tests for APClassifier."""

from __future__ import annotations

import random

import pytest

from repro.core.classifier import APClassifier
from repro.datasets import internet2_like, toy_network, uniform_over_atoms
from repro.headerspace.header import Packet
from repro.network.dataplane import DataPlane


class TestBuild:
    def test_build_from_network(self):
        clf = APClassifier.build(toy_network())
        assert clf.universe.atom_count == 6
        assert clf.tree.leaf_count() == 6

    def test_build_from_dataplane(self):
        dp = DataPlane(toy_network())
        clf = APClassifier.from_dataplane(dp, strategy="quick_ordering")
        assert clf.strategy == "quick_ordering"
        assert clf.dataplane is dp

    def test_repr(self):
        clf = APClassifier.build(toy_network())
        assert "APClassifier" in repr(clf)


class TestQueries:
    def test_classify_accepts_packet_or_int(self):
        network = toy_network()
        clf = APClassifier.build(network)
        packet = Packet.of(network.layout, dst_ip="10.1.0.1")
        assert clf.classify(packet) == clf.classify(packet.value)

    def test_query_combines_stages(self):
        network = toy_network()
        clf = APClassifier.build(network)
        packet = Packet.of(network.layout, dst_ip="10.2.0.1")
        behavior = clf.query(packet, "b1")
        assert behavior.atom_id == clf.classify(packet)
        assert behavior.delivered_hosts() == {"h2"}

    def test_visit_counting(self):
        clf = APClassifier.build(toy_network(), count_visits=True)
        assert clf.counter is not None
        clf.classify(0)
        clf.classify(0)
        assert clf.counter.total == 2

    def test_no_counter_by_default(self):
        clf = APClassifier.build(toy_network())
        assert clf.counter is None
        with pytest.raises(ValueError):
            clf.rebuild_tree(use_weights=True)


class TestRebuilds:
    def test_weighted_rebuild_improves_expected_depth(self):
        rng = random.Random(0)
        clf = APClassifier.build(internet2_like(prefixes_per_router=2), count_visits=True)
        # Hammer one atom with queries.
        trace = uniform_over_atoms(clf.universe, 1, rng)
        hot_header = trace.headers[0]
        for _ in range(500):
            clf.classify(hot_header)
        hot_atom = clf.classify(hot_header)
        depth_before = clf.tree.leaf_depths()[hot_atom]
        clf.rebuild_tree(use_weights=True)
        depth_after = clf.tree.leaf_depths()[hot_atom]
        assert depth_after <= depth_before

    def test_plain_rebuild_keeps_universe(self):
        clf = APClassifier.build(toy_network())
        universe_before = clf.universe
        clf.rebuild_tree()
        assert clf.universe is universe_before

    def test_reconstruct_replaces_universe(self):
        clf = APClassifier.build(toy_network())
        universe_before = clf.universe
        clf.reconstruct()
        assert clf.universe is not universe_before
        assert clf.universe.atom_count == universe_before.atom_count


class TestStats:
    def test_stats_fields(self):
        clf = APClassifier.build(toy_network())
        stats = clf.stats()
        assert stats.predicates == 3
        assert stats.atoms == 6
        assert stats.tree_leaves == 6
        assert stats.estimated_bytes > 0
        assert stats.tree_max_depth >= stats.tree_average_depth

    def test_memory_small_for_internet2(self, internet2_classifier):
        stats = internet2_classifier.stats()
        # "AP Classifier uses very small memory" -- a few MB at paper
        # scale; our scaled dataset must come in well under that.
        assert stats.estimated_bytes < 8 * 1024 * 1024
