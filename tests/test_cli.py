"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


class TestStats:
    def test_toy_stats(self, capsys):
        assert main(["stats", "--dataset", "toy"]) == 0
        out = capsys.readouterr().out
        assert "atomic predicates" in out
        assert "AP Tree avg depth" in out

    def test_unknown_dataset(self, capsys):
        assert main(["stats", "--dataset", "bogus"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: unknown dataset")
        assert len(err.strip().splitlines()) == 1


class TestQuery:
    def test_delivered_query(self, capsys):
        code = main(
            [
                "query",
                "--dataset",
                "toy",
                "--dst-ip",
                "10.2.0.1",
                "--ingress",
                "b1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "b1 -> b2 -> h2" in out
        assert "atomic predicate" in out

    def test_dropped_query(self, capsys):
        main(
            [
                "query",
                "--dataset",
                "toy",
                "--dst-ip",
                "99.0.0.1",
                "--ingress",
                "b1",
            ]
        )
        out = capsys.readouterr().out
        assert "dropped" in out

    def test_unknown_ingress(self, capsys):
        code = main(
            [
                "query",
                "--dataset",
                "toy",
                "--dst-ip",
                "10.0.0.1",
                "--ingress",
                "nope",
            ]
        )
        assert code == 2
        assert "unknown ingress box" in capsys.readouterr().err


class TestTree:
    def test_tree_stats(self, capsys):
        assert main(["--strategy", "quick_ordering", "tree", "--dataset", "toy"]) == 0
        out = capsys.readouterr().out
        assert "quick_ordering" in out
        assert "average depth" in out


class TestVerify:
    def test_clean_network_exits_zero(self, capsys):
        assert main(["verify", "--dataset", "toy", "--ingress", "b1"]) == 0
        out = capsys.readouterr().out
        assert "looping classes" in out

    def test_loops_exit_nonzero(self, capsys, tmp_path):
        # Build a looped network, snapshot it, verify via the CLI.
        from repro.headerspace.fields import dst_ip_layout, parse_ipv4
        from repro.network.builder import Network
        from repro.network.rules import Match
        from repro.network.serialize import save_network

        network = Network(dst_ip_layout(), name="looped")
        network.add_box("a")
        network.add_box("b")
        network.link("a", "to_b", "b", "from_a")
        network.link("b", "to_a", "a", "from_b")
        match = Match.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8)
        network.add_forwarding_rule("a", match, "to_b", 8)
        network.add_forwarding_rule("b", match, "to_a", 8)
        path = tmp_path / "looped.json"
        save_network(network, path)
        code = main(["verify", "--snapshot", str(path), "--ingress", "a"])
        assert code == 1
        assert "loop witness" in capsys.readouterr().out

    def test_waypoint_flag(self, capsys):
        code = main(
            [
                "verify",
                "--dataset",
                "toy",
                "--ingress",
                "b1",
                "--waypoint",
                "b2",
                "--host",
                "h2",
            ]
        )
        assert code == 0
        assert "waypoint" in capsys.readouterr().out

    def test_unknown_ingress(self, capsys):
        assert main(["verify", "--dataset", "toy", "--ingress", "nope"]) == 2
        assert "unknown ingress box" in capsys.readouterr().err


class TestSnapshot:
    def test_snapshot_then_query(self, capsys, tmp_path):
        path = tmp_path / "toy.json"
        assert main(["snapshot", "--dataset", "toy", "--out", str(path)]) == 0
        capsys.readouterr()
        assert (
            main(
                [
                    "query",
                    "--snapshot",
                    str(path),
                    "--dst-ip",
                    "10.1.0.1",
                    "--ingress",
                    "b1",
                ]
            )
            == 0
        )
        assert "h1" in capsys.readouterr().out


class TestQueryTrace:
    def test_trace_flag_shows_search(self, capsys):
        assert (
            main(
                [
                    "query",
                    "--dataset",
                    "toy",
                    "--dst-ip",
                    "10.2.0.1",
                    "--ingress",
                    "b1",
                    "--trace",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "AP Tree search" in out
        assert "host h2" in out
        assert "-> true" in out


class TestReachability:
    def test_matrix(self, capsys):
        assert main(["reachability", "--dataset", "toy"]) == 0
        out = capsys.readouterr().out
        assert "reachability matrix" in out
        assert "h1" in out and "h2" in out


class TestDiff:
    def _snapshots(self, tmp_path):
        from repro.headerspace.fields import parse_ipv4
        from repro.network.rules import ForwardingRule, Match
        from repro.network.serialize import load_network, save_network

        before = tmp_path / "before.json"
        after = tmp_path / "after.json"
        main(["snapshot", "--dataset", "toy", "--out", str(before)])
        network = load_network(before)
        network.box("b2").table.add(
            ForwardingRule(
                Match.prefix("dst_ip", parse_ipv4("10.2.0.0"), 17), (), 18
            )
        )
        save_network(network, after)
        return before, after

    def test_detects_change(self, capsys, tmp_path):
        before, after = self._snapshots(tmp_path)
        capsys.readouterr()
        code = main(
            ["diff", "--before", str(before), "--after", str(after),
             "--ingress", "b1"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "changed behavior" in out
        assert "witness" in out

    def test_identical_snapshots_exit_zero(self, capsys, tmp_path):
        before, _ = self._snapshots(tmp_path)
        code = main(
            ["diff", "--before", str(before), "--after", str(before),
             "--ingress", "b1"]
        )
        assert code == 0
        assert "no behavior changes" in capsys.readouterr().out

    def test_unknown_ingress(self, tmp_path, capsys):
        before, after = self._snapshots(tmp_path)
        code = main(
            ["diff", "--before", str(before), "--after", str(after),
             "--ingress", "nope"]
        )
        assert code == 2
        assert "unknown ingress box" in capsys.readouterr().err


class TestStatsMemory:
    def test_memory_breakdown(self, capsys):
        assert main(["stats", "--dataset", "toy", "--memory"]) == 0
        out = capsys.readouterr().out
        assert "memory breakdown" in out
        assert "atom BDD nodes" in out


class TestErrorSurfaces:
    """Operational failures exit non-zero with one line, no traceback."""

    def test_missing_snapshot_path(self, capsys):
        code = main(
            ["query", "--snapshot", "/no/such/file.json",
             "--dst-ip", "10.0.0.1", "--ingress", "b1"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot read snapshot")
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_malformed_snapshot_file(self, capsys, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("this is not a snapshot")
        assert main(["stats", "--snapshot", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: malformed snapshot")
        assert "Traceback" not in err

    def test_missing_diff_snapshot(self, capsys, tmp_path):
        missing = tmp_path / "absent.json"
        code = main(
            ["diff", "--before", str(missing), "--after", str(missing),
             "--ingress", "b1"]
        )
        assert code == 2
        assert "cannot read snapshot" in capsys.readouterr().err


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--dataset", "toy"])
        assert args.func.__name__ == "_cmd_serve"
        assert args.overflow == "wait"
        assert args.port == 0

    def test_bad_overflow_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--overflow", "bogus"])

    def test_negative_delay_rejected(self, capsys):
        assert main(["serve", "--dataset", "toy", "--max-delay-ms", "-1"]) == 2
        assert "max-delay-ms" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_strategy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--strategy", "bogus", "stats"])


class TestSaveLoad:
    def test_save_artifact_then_query_via_artifact_flag(self, capsys, tmp_path):
        out = tmp_path / "toy.apc"
        assert main(["save", "--dataset", "toy", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "wrote artifact classifier" in stdout
        assert out.stat().st_size > 0
        code = main(
            [
                "query",
                "--artifact",
                str(out),
                "--dst-ip",
                "10.2.0.1",
                "--ingress",
                "b1",
            ]
        )
        assert code == 0
        assert "b1 -> b2 -> h2" in capsys.readouterr().out

    def test_save_json_then_load(self, capsys, tmp_path):
        out = tmp_path / "toy.json"
        assert main(["save", "--dataset", "toy", "--format", "json",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["load", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "persisted classifier" in stdout
        assert "json" in stdout

    def test_load_artifact_summary_and_deep_verify(self, capsys, tmp_path):
        out = tmp_path / "toy.apc"
        main(["save", "--dataset", "toy", "--out", str(out)])
        capsys.readouterr()
        assert main(["load", str(out)]) == 0
        assert "persisted classifier" in capsys.readouterr().out
        assert main(["load", str(out), "--deep-verify"]) == 0
        assert "deep" in capsys.readouterr().out

    def test_save_network_format_round_trips(self, capsys, tmp_path):
        out = tmp_path / "toy.net.json"
        assert main(["save", "--dataset", "toy", "--format", "network",
                     "--out", str(out)]) == 0
        assert "snapshot" in capsys.readouterr().out
        assert main(["stats", "--snapshot", str(out)]) == 0

    def test_snapshot_alias_still_works(self, capsys, tmp_path):
        out = tmp_path / "toy.net.json"
        assert main(["snapshot", "--dataset", "toy", "--out", str(out)]) == 0
        assert "wrote toy snapshot" in capsys.readouterr().out

    def test_corrupt_artifact_one_line_error(self, capsys, tmp_path):
        out = tmp_path / "toy.apc"
        main(["save", "--dataset", "toy", "--out", str(out)])
        capsys.readouterr()
        blob = out.read_bytes()
        bad = tmp_path / "bad.apc"
        bad.write_bytes(blob[: len(blob) - 16])
        assert main(["load", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1
        # The same contract holds when the artifact feeds a query.
        assert main(["query", "--artifact", str(bad), "--dst-ip", "10.2.0.1",
                     "--ingress", "b1"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1

    def test_missing_artifact_path(self, capsys):
        assert main(["stats", "--artifact", "/nonexistent/x.apc"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot read")

    def test_serve_workers_flag_parses(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "--serve-workers", "4"])
        assert args.serve_workers == 4
        args = parser.parse_args(["serve"])
        assert args.serve_workers is None
