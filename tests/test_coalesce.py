"""Tests for atom coalescing after predicate deletions."""

from __future__ import annotations

import random

import pytest

from repro.bdd import BDDManager, Function
from repro.core.atomic import AtomicUniverse
from repro.core.classifier import APClassifier
from repro.core.weights import VisitCounter
from repro.datasets import internet2_like
from repro.network.dataplane import LabeledPredicate


def two_predicate_universe() -> AtomicUniverse:
    mgr = BDDManager(3)
    p0 = Function.variable(mgr, 0)
    p1 = Function.variable(mgr, 1)
    labeled = [
        LabeledPredicate(0, "forward", "b", "x", p0),
        LabeledPredicate(1, "forward", "b", "y", p1),
    ]
    return AtomicUniverse.compute(mgr, labeled)


class TestCoalesce:
    def test_identity_when_minimal(self):
        universe = two_predicate_universe()
        before = universe.atom_ids()
        mapping = universe.coalesce()
        assert universe.atom_ids() == before
        assert all(old == new for old, new in mapping.items())

    def test_merges_after_deletion(self):
        universe = two_predicate_universe()
        assert universe.atom_count == 4
        universe.remove_predicate(1)
        mapping = universe.coalesce()
        # Only p0 remains: two atoms (p0 and ~p0).
        assert universe.atom_count == 2
        assert universe.verify_partition()
        merged_targets = {new for old, new in mapping.items() if old != new}
        assert len(merged_targets) == 2

    def test_r_sets_updated(self):
        universe = two_predicate_universe()
        universe.remove_predicate(1)
        universe.coalesce()
        r0 = universe.r(0)
        assert len(r0) == 1
        assert universe.atom_fn(next(iter(r0))) == universe.predicate_fn(0)

    def test_classify_still_total(self):
        universe = two_predicate_universe()
        universe.remove_predicate(0)
        universe.remove_predicate(1)
        universe.coalesce()
        assert universe.atom_count == 1
        for header in range(8):
            universe.classify(header)


class TestCounterMerge:
    def test_counts_conserved(self):
        counter = VisitCounter()
        counter.record(1, 10)
        counter.record(2, 5)
        counter.record(3, 7)
        counter.on_merge({1: 9, 2: 9, 3: 3})
        assert counter.total == 22
        assert counter.count(9) == 15
        assert counter.count(3) == 7
        assert counter.count(1) == 0


class TestRebuildAfterDeletions:
    def test_rebuild_tree_after_insert_then_remove(self):
        """Regression: the exact sequence found by stateful testing --
        insert a splitting rule, remove it, then rebuild the tree over the
        same universe."""
        from repro.headerspace.fields import parse_ipv4
        from repro.network.rules import ForwardingRule, Match

        classifier = APClassifier.build(
            internet2_like(prefixes_per_router=1, te_fraction=0.0)
        )
        box = "ATLA"
        ports = classifier.dataplane.network.box(box).table.out_ports()
        new_rule = ForwardingRule(
            Match.prefix("dst_ip", parse_ipv4("10.2.0.0"), 24),
            (ports[0],),
            priority=24,
        )
        classifier.insert_rule(box, new_rule)
        classifier.remove_rule(box, new_rule)
        classifier.rebuild_tree()  # used to raise ValueError
        rng = random.Random(1)
        for _ in range(40):
            header = rng.getrandbits(32)
            assert classifier.tree.classify(header) == classifier.universe.classify(
                header
            )

    def test_weighted_rebuild_after_deletions(self):
        from repro.headerspace.fields import parse_ipv4
        from repro.network.rules import ForwardingRule, Match

        classifier = APClassifier.build(
            internet2_like(prefixes_per_router=1, te_fraction=0.0),
            count_visits=True,
        )
        classifier.classify(parse_ipv4("10.1.0.1"))
        box = "CHIC"
        ports = classifier.dataplane.network.box(box).table.out_ports()
        new_rule = ForwardingRule(
            Match.prefix("dst_ip", parse_ipv4("10.1.0.0"), 24),
            (ports[0],),
            priority=24,
        )
        classifier.insert_rule(box, new_rule)
        classifier.remove_rule(box, new_rule)
        classifier.rebuild_tree(use_weights=True)
        assert classifier.counter is not None
        assert classifier.counter.total == 1  # conserved through merges
