"""Compiled flat-array engine: agreement, staleness, and backend behavior.

The compiled artifact must be a drop-in for the interpreted tree -- same
atom id for every header, on every backend -- and must go stale (never
serve pre-update answers) the moment the tree changes under it.
"""

from __future__ import annotations

import random

import pytest

import repro.core.compiled as compiled_mod
from repro.core.atomic import AtomicUniverse
from repro.core.classifier import APClassifier
from repro.core.compiled import (
    NUMPY_BACKEND,
    STDLIB_BACKEND,
    CompiledAPTree,
    FlatBDDSet,
    available_backends,
    default_backend,
)
from repro.core.construction import build_tree
from repro.datasets import internet2_like, rule_update_stream
from repro.network.dataplane import LabeledPredicate

BACKENDS = available_backends()


def random_headers(count: int, num_vars: int, seed: int) -> list[int]:
    rng = random.Random(seed)
    return [rng.getrandbits(num_vars) for _ in range(count)]


def fresh_classifier() -> APClassifier:
    return APClassifier.build(internet2_like(prefixes_per_router=2))


# ----------------------------------------------------------------------
# FlatBDDSet: flattened predicate evaluation
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
class TestFlatBDDSet:
    def test_scalar_evaluate_matches_functions(self, toy_dataplane, backend):
        labeled = toy_dataplane.predicates()
        flat = FlatBDDSet.compile(
            toy_dataplane.manager, [lp.fn.node for lp in labeled], backend=backend
        )
        headers = random_headers(80, toy_dataplane.manager.num_vars, seed=3)
        for header in headers:
            for index, lp in enumerate(labeled):
                assert flat.evaluate(index, header) == lp.fn.evaluate(header)

    def test_truth_bits_batch_matches_scalar(self, toy_dataplane, backend):
        labeled = toy_dataplane.predicates()
        flat = FlatBDDSet.compile(
            toy_dataplane.manager, [lp.fn.node for lp in labeled], backend=backend
        )
        headers = random_headers(120, toy_dataplane.manager.num_vars, seed=4)
        batch = flat.truth_bits_batch(headers)
        assert batch == [flat.truth_bits(h) for h in headers]
        # Cross-check the bit layout against direct evaluation: root j
        # sits at bit (k - 1 - j), first root at the top.
        k = len(labeled)
        for header, bits in zip(headers, batch):
            for j, lp in enumerate(labeled):
                assert bool((bits >> (k - 1 - j)) & 1) == lp.fn.evaluate(header)

    def test_first_true_batch_matches_linear_scan(self, toy_universe, backend):
        atoms = toy_universe.atoms()
        atom_ids = list(atoms)
        flat = FlatBDDSet.compile(
            toy_universe.manager,
            [atoms[a].node for a in atom_ids],
            backend=backend,
        )
        headers = random_headers(120, toy_universe.manager.num_vars, seed=5)
        indices = flat.first_true_batch(headers)
        assert [flat.first_true(h) for h in headers] == indices
        for header, index in zip(headers, indices):
            assert atom_ids[index] == toy_universe.classify(header)

    def test_first_true_raises_when_nothing_matches(self, toy_dataplane, backend):
        manager = toy_dataplane.manager
        # A single unsatisfiable-for-some-headers root: var 0 must be 1.
        root = manager.var(0)
        flat = FlatBDDSet.compile(manager, [root], backend=backend)
        no_match = 0  # header with var 0 == 0
        with pytest.raises(ValueError):
            flat.first_true(no_match)
        with pytest.raises(ValueError):
            flat.first_true_batch([1 << (manager.num_vars - 1), no_match])

    def test_empty_batch(self, toy_dataplane, backend):
        labeled = toy_dataplane.predicates()
        flat = FlatBDDSet.compile(
            toy_dataplane.manager, [lp.fn.node for lp in labeled], backend=backend
        )
        assert flat.truth_bits_batch([]) == []
        assert flat.first_true_batch([]) == []


# ----------------------------------------------------------------------
# CompiledAPTree: agreement with the interpreted tree
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
class TestCompiledAPTree:
    def test_agrees_on_toy_tree(self, toy_universe, backend):
        tree = build_tree(toy_universe, strategy="oapt").tree
        compiled = CompiledAPTree.compile(tree, backend=backend)
        headers = random_headers(200, toy_universe.manager.num_vars, seed=6)
        expected = [tree.classify(h) for h in headers]
        assert compiled.classify_batch(headers) == expected
        assert [compiled.classify(h) for h in headers] == expected

    def test_agrees_on_internet2_tree(self, internet2_classifier, backend):
        tree = internet2_classifier.tree
        num_vars = internet2_classifier.dataplane.manager.num_vars
        compiled = CompiledAPTree.compile(tree, backend=backend)
        headers = random_headers(300, num_vars, seed=7)
        assert compiled.classify_batch(headers) == tree.classify_many(headers)

    def test_small_batch_uses_scalar_path(self, toy_universe, backend):
        tree = build_tree(toy_universe, strategy="oapt").tree
        compiled = CompiledAPTree.compile(tree, backend=backend)
        headers = random_headers(3, toy_universe.manager.num_vars, seed=8)
        assert compiled.classify_batch(headers) == [tree.classify(h) for h in headers]
        assert compiled.classify_batch([]) == []

    def test_single_atom_tree(self, toy_dataplane, backend):
        # A universe with no predicates has one atom: TRUE; the tree is a
        # bare leaf and the compiled program is just that sink.
        universe = AtomicUniverse.compute(toy_dataplane.manager, [])
        tree = build_tree(universe, strategy="oapt").tree
        compiled = CompiledAPTree.compile(tree, backend=backend)
        headers = random_headers(40, toy_dataplane.manager.num_vars, seed=9)
        (atom_id,) = universe.atom_ids()
        assert compiled.classify_batch(headers) == [atom_id] * len(headers)

    def test_stats_shape(self, toy_universe, backend):
        tree = build_tree(toy_universe, strategy="oapt").tree
        compiled = CompiledAPTree.compile(tree, backend=backend)
        stats = compiled.stats()
        assert stats["backend"] == backend
        assert stats["tree_nodes"] == tree.node_count()
        assert stats["fused_nodes"] > 0
        assert stats["estimated_bytes"] > 0


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------


class TestBackends:
    def test_default_backend_is_available(self):
        assert default_backend() in BACKENDS
        assert STDLIB_BACKEND in BACKENDS  # stdlib is always there

    def test_unknown_backend_rejected(self, toy_universe):
        tree = build_tree(toy_universe, strategy="oapt").tree
        with pytest.raises(ValueError):
            CompiledAPTree.compile(tree, backend="cuda")

    def test_numpy_request_without_numpy_rejected(self, toy_universe, monkeypatch):
        # Simulate a numpy-less host: backend resolution lives in
        # repro.core.kernel, the evaluators in repro.core.compiled --
        # both consult their own import.
        import repro.core.kernel as kernel_mod

        monkeypatch.setattr(compiled_mod, "_np", None)
        monkeypatch.setattr(kernel_mod, "_np", None)
        tree = build_tree(toy_universe, strategy="oapt").tree
        with pytest.raises(ValueError):
            CompiledAPTree.compile(tree, backend=NUMPY_BACKEND)
        # The stdlib backend keeps working and stays the default.
        assert compiled_mod.default_backend() == STDLIB_BACKEND
        compiled = CompiledAPTree.compile(tree)
        headers = random_headers(50, toy_universe.manager.num_vars, seed=10)
        assert compiled.classify_batch(headers) == [tree.classify(h) for h in headers]


# ----------------------------------------------------------------------
# Staleness: compiled artifacts must never serve pre-update answers
# ----------------------------------------------------------------------


class TestStaleness:
    def _first_splitting_update(self, clf: APClassifier, rng: random.Random):
        """Apply inserts until one actually changes the tree."""
        before = clf.tree.version
        for update in rule_update_stream(
            clf.dataplane.network, 40, rng, insert_fraction=1.0
        ):
            clf.insert_rule(update.box, update.rule)
            if clf.tree.version != before:
                return
        pytest.fail("no update changed the tree")

    def test_add_predicate_invalidates(self):
        clf = fresh_classifier()
        clf.compile()
        assert clf.compiled_fresh
        self._first_splitting_update(clf, random.Random(31))
        assert not clf.compiled_fresh

        headers = random_headers(150, clf.dataplane.manager.num_vars, seed=11)
        # Stale artifact: queries fall back to the interpreted tree, so
        # every answer reflects the post-update universe.
        for header in headers:
            assert clf.classify(header) == clf.universe.classify(header)
        assert clf.classify_batch(headers) == [
            clf.universe.classify(h) for h in headers
        ]

        clf.compile()
        assert clf.compiled_fresh
        assert clf.classify_batch(headers) == [
            clf.universe.classify(h) for h in headers
        ]

    def test_remove_predicate_invalidates(self):
        clf = fresh_classifier()
        clf.compile()
        pid = max(clf.universe.predicate_ids())
        clf._engine.remove_predicate(pid)
        assert not clf.compiled_fresh
        headers = random_headers(100, clf.dataplane.manager.num_vars, seed=12)
        assert clf.classify_batch(headers) == [
            clf.universe.classify(h) for h in headers
        ]

    def test_direct_universe_update_invalidates(self, toy_universe):
        tree = build_tree(toy_universe, strategy="oapt").tree
        compiled = CompiledAPTree.compile(tree)
        assert compiled.fresh
        atoms = sorted(toy_universe.atom_ids())
        new_fn = toy_universe.atom_fn(atoms[0]) | toy_universe.atom_fn(atoms[-1])
        from repro.core.update import UpdateEngine

        engine = UpdateEngine(toy_universe, tree)
        engine.add_predicate(
            LabeledPredicate(pid=99_999, kind="forward", box="x", port="p", fn=new_fn)
        )
        assert tree.version > compiled.tree_version
        assert not compiled.fresh

    def test_rebuild_drops_artifact(self):
        clf = fresh_classifier()
        clf.compile()
        assert clf.compiled is not None
        clf.rebuild_tree()
        assert clf.compiled is None
        # And recompiling against the new tree works.
        clf.compile()
        assert clf.compiled_fresh

    def test_artifact_not_fresh_for_other_tree(self, toy_universe):
        tree_a = build_tree(toy_universe, strategy="oapt").tree
        tree_b = build_tree(toy_universe, strategy="quick_ordering").tree
        compiled = CompiledAPTree.compile(tree_a)
        assert compiled.is_fresh_for(tree_a)
        assert not compiled.is_fresh_for(tree_b)

    def test_rebuilt_tree_with_coinciding_version_is_stale(self):
        # Regression guard for the identity half of the freshness check:
        # a full rebuild yields a brand-new tree whose *fresh* version
        # counter can coincide with the version stamped at compile time
        # (both start at 0).  Version comparison alone would call the
        # artifact fresh and serve pre-rebuild atom ids.
        clf = fresh_classifier()
        artifact = clf.compile()
        old_tree = clf.tree
        clf.rebuild_tree()
        assert clf.tree is not old_tree
        assert clf.tree.version == artifact.tree_version  # the trap
        assert not artifact.is_fresh_for(clf.tree)
        assert artifact.stale_reason(clf.tree) == "swapped"
        assert artifact.is_fresh_for(old_tree)

    def test_stale_reason_distinguishes_mutation_from_swap(self, toy_universe):
        tree = build_tree(toy_universe, strategy="oapt").tree
        compiled = CompiledAPTree.compile(tree)
        assert compiled.stale_reason(tree) is None
        tree.touch()
        assert compiled.stale_reason(tree) == "version"
        other = build_tree(toy_universe, strategy="oapt").tree
        assert compiled.stale_reason(other) == "swapped"

    def test_classifier_records_fallback_reasons(self):
        from repro.obs import Recorder

        clf = fresh_classifier()
        recorder = Recorder()
        clf.set_recorder(recorder)
        header = 0
        artifact = clf.compile()
        clf.classify(header)  # fresh artifact: no fallback
        assert recorder.updates.stale_fallbacks == 0
        clf.tree.touch()
        clf.classify(header)
        assert recorder.updates.stale_fallback_version == 1
        # Simulate a stale reference surviving a swap (the classifier
        # normally drops it): the identity mismatch must be recorded as
        # "swapped", not "version".
        clf.rebuild_tree()
        clf._compiled = artifact
        clf.classify(header)
        assert recorder.updates.stale_fallback_swapped == 1
        assert recorder.updates.stale_fallbacks == 2


# ----------------------------------------------------------------------
# Baseline batch paths
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
class TestBaselineBatch:
    def test_aplinear_batch_agrees(self, toy_dataplane, toy_universe, backend):
        from repro.baselines import APLinearClassifier

        clf = APLinearClassifier(toy_dataplane, toy_universe)
        headers = random_headers(90, toy_dataplane.manager.num_vars, seed=13)
        uncompiled = clf.classify_batch(headers)
        clf.compile(backend=backend)
        assert clf.classify_batch(headers) == uncompiled
        assert uncompiled == [toy_universe.classify(h) for h in headers]

    def test_pscan_batch_agrees(self, toy_dataplane, backend):
        from repro.baselines import PScanIdentifier

        scan = PScanIdentifier(toy_dataplane)
        headers = random_headers(90, toy_dataplane.manager.num_vars, seed=14)
        uncompiled = scan.verdict_bits_batch(headers)
        scan.compile(backend=backend)
        assert scan.verdict_bits_batch(headers) == uncompiled
        assert uncompiled == [scan.verdict_bits(h) for h in headers]
