"""Property test: the compiled engine is indistinguishable from the tree.

For random predicate universes (cube predicates over a small variable
space) and random header batches, ``CompiledAPTree.classify_batch`` must
equal the interpreted walk header-by-header on every backend, and both
must equal the atomic universe's linear scan -- the ground truth the AP
Tree itself is verified against.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDDManager, Function
from repro.core.atomic import AtomicUniverse
from repro.core.compiled import CompiledAPTree, available_backends
from repro.core.construction import build_tree
from repro.network.dataplane import LabeledPredicate

NUM_VARS = 7

# A cube predicate: a partial assignment var -> required value.
cube = st.dictionaries(
    st.integers(min_value=0, max_value=NUM_VARS - 1),
    st.booleans(),
    min_size=1,
    max_size=4,
)

universe_spec = st.lists(cube, min_size=1, max_size=6)

headers = st.lists(
    st.integers(min_value=0, max_value=2**NUM_VARS - 1),
    min_size=0,
    max_size=64,
)


@given(universe_spec, headers)
@settings(max_examples=120, deadline=None)
def test_compiled_matches_tree_and_linear_scan(spec, batch):
    manager = BDDManager(NUM_VARS)
    predicates = [
        LabeledPredicate(
            pid=pid,
            kind="forward",
            box="sim",
            port="sim",
            fn=Function.cube(manager, literals),
        )
        for pid, literals in enumerate(spec)
    ]
    universe = AtomicUniverse.compute(manager, predicates)
    tree = build_tree(universe, strategy="oapt").tree

    expected = [tree.classify(header) for header in batch]
    assert expected == [universe.classify(header) for header in batch]

    for backend in available_backends():
        compiled = CompiledAPTree.compile(tree, backend=backend)
        assert compiled.classify_batch(batch) == expected, backend
