"""Tests for the thread-based parallel reconstruction (Section VI-B)."""

from __future__ import annotations

import random
import time

import pytest

from repro.core.concurrent import ConcurrentClassifier
from repro.datasets import internet2_like, rule_update_stream


@pytest.fixture()
def concurrent():
    classifier = ConcurrentClassifier.build(
        internet2_like(prefixes_per_router=2), rebuild_after_updates=8
    )
    yield classifier
    classifier.close()


def wait_for(predicate, timeout_s: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestLifecycle:
    def test_context_manager(self):
        with ConcurrentClassifier.build(internet2_like(prefixes_per_router=2)) as clf:
            assert clf.classify(0) >= 0
        # Thread must have terminated.
        assert clf._thread.is_alive() is False

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ConcurrentClassifier.build(
                internet2_like(prefixes_per_router=2), rebuild_after_updates=0
            )

    def test_repr(self, concurrent):
        assert "ConcurrentClassifier" in repr(concurrent)


class TestQueries:
    def test_query_matches_plain_classifier(self, concurrent):
        from repro.core.classifier import APClassifier

        plain = APClassifier.from_dataplane(concurrent.dataplane)
        rng = random.Random(1)
        boxes = sorted(concurrent.dataplane.network.boxes)
        for _ in range(30):
            header = rng.getrandbits(32)
            ingress = rng.choice(boxes)
            fast = concurrent.query(header, ingress)
            reference = plain.query(header, ingress)
            assert sorted(map(tuple, fast.paths())) == sorted(
                map(tuple, reference.paths())
            )


class TestRebuilds:
    def test_updates_trigger_swap(self, concurrent):
        rng = random.Random(2)
        network = concurrent.dataplane.network
        for update in rule_update_stream(network, 20, rng, insert_fraction=1.0):
            concurrent.insert_rule(update.box, update.rule)
        assert wait_for(lambda: concurrent.swaps_completed >= 1)
        # After the swap the counter resets and classification stays exact.
        assert wait_for(lambda: concurrent.updates_since_swap < 20)
        state = concurrent._state
        for _ in range(40):
            header = rng.getrandbits(32)
            assert state.tree.classify(header) == state.universe.classify(header)

    def test_manual_rebuild_request(self, concurrent):
        before = concurrent.swaps_completed
        concurrent.request_rebuild()
        assert wait_for(lambda: concurrent.swaps_completed > before)

    def test_queries_correct_under_concurrent_churn(self):
        """Hammer updates from the main thread while rebuilds race; every
        classification observed must be valid for the generation served."""
        classifier = ConcurrentClassifier.build(
            internet2_like(prefixes_per_router=2), rebuild_after_updates=4
        )
        try:
            rng = random.Random(3)
            network = classifier.dataplane.network
            stream = rule_update_stream(network, 40, rng)
            for update in stream:
                if update.kind == "insert":
                    classifier.insert_rule(update.box, update.rule)
                else:
                    classifier.remove_rule(update.box, update.rule)
                # Interleave queries: the atom returned must contain the
                # packet under the generation that served the query.
                header = rng.getrandbits(32)
                state = classifier._state
                atom_id = state.tree.classify(header)
                assert state.universe.atom_fn(atom_id).evaluate(header)
            assert wait_for(lambda: classifier.swaps_completed >= 1)
        finally:
            classifier.close()

    def test_swap_sheds_tombstones(self):
        classifier = ConcurrentClassifier.build(
            internet2_like(prefixes_per_router=2), rebuild_after_updates=1000
        )
        try:
            rng = random.Random(4)
            network = classifier.dataplane.network
            for update in rule_update_stream(network, 30, rng):
                if update.kind == "insert":
                    classifier.insert_rule(update.box, update.rule)
                else:
                    classifier.remove_rule(update.box, update.rule)
            fragmented = classifier._state.universe.atom_count
            classifier.request_rebuild()
            assert wait_for(lambda: classifier.swaps_completed >= 1)
            assert classifier._state.universe.atom_count <= fragmented
        finally:
            classifier.close()
