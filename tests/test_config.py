"""The REPRO_* knob registry: typed accessors, defaults, loud failures."""

from __future__ import annotations

import pytest

from repro import config


class TestFlags:
    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv(config.ENV_OBS_SIDECAR, raising=False)
        assert config.obs_sidecar() is False
        monkeypatch.delenv(config.ENV_ARTIFACT_VERIFY, raising=False)
        assert config.artifact_verify() is True

    @pytest.mark.parametrize("raw", ["1", "true", "YES", "on"])
    def test_truthy(self, monkeypatch, raw):
        monkeypatch.setenv(config.ENV_OBS_SIDECAR, raw)
        assert config.obs_sidecar() is True

    @pytest.mark.parametrize("raw", ["0", "false", "No", "OFF"])
    def test_falsy(self, monkeypatch, raw):
        monkeypatch.setenv(config.ENV_ARTIFACT_MMAP, raw)
        assert config.artifact_mmap() is False

    def test_garbage_flag_is_loud(self, monkeypatch):
        monkeypatch.setenv(config.ENV_ARTIFACT_VERIFY, "maybe")
        with pytest.raises(ValueError, match="REPRO_ARTIFACT_VERIFY"):
            config.artifact_verify()

    def test_disable_numpy_keeps_legacy_truthiness(self, monkeypatch):
        # Any unrecognized non-empty value disables the fast path (the
        # safe direction); explicit falsy spellings keep it on.
        monkeypatch.setenv(config.ENV_DISABLE_NUMPY, "definitely")
        assert config.numpy_disabled() is True
        monkeypatch.setenv(config.ENV_DISABLE_NUMPY, "0")
        assert config.numpy_disabled() is False
        monkeypatch.delenv(config.ENV_DISABLE_NUMPY)
        assert config.numpy_disabled() is False


class TestInts:
    def test_workers_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(config.ENV_WORKERS, "4")
        assert config.workers() == 4
        assert config.workers(2) == 2

    def test_workers_floor_is_one(self, monkeypatch):
        monkeypatch.setenv(config.ENV_WORKERS, "-3")
        assert config.workers() == 1
        assert config.workers(0) == 1

    def test_serve_workers_default(self, monkeypatch):
        monkeypatch.delenv(config.ENV_SERVE_WORKERS, raising=False)
        assert config.serve_workers() == 1
        monkeypatch.setenv(config.ENV_SERVE_WORKERS, "3")
        assert config.serve_workers() == 3
        assert config.serve_workers(2) == 2

    def test_bad_int_is_loud(self, monkeypatch):
        monkeypatch.setenv(config.ENV_WORKERS, "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            config.workers()


class TestEngine:
    def test_unset_means_auto(self, monkeypatch):
        monkeypatch.delenv(config.ENV_ENGINE, raising=False)
        assert config.engine() is None

    @pytest.mark.parametrize("raw", ["native", "NumPy", "STDLIB"])
    def test_env_names_are_case_insensitive(self, monkeypatch, raw):
        monkeypatch.setenv(config.ENV_ENGINE, raw)
        assert config.engine() == raw.lower()

    def test_auto_spelling_means_auto(self, monkeypatch):
        monkeypatch.setenv(config.ENV_ENGINE, "auto")
        assert config.engine() is None

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(config.ENV_ENGINE, "stdlib")
        assert config.engine("numpy") == "numpy"

    def test_unknown_engine_is_loud(self, monkeypatch):
        monkeypatch.setenv(config.ENV_ENGINE, "fortran")
        with pytest.raises(ValueError, match="REPRO_ENGINE"):
            config.engine()

    def test_resolution_honors_preference(self, monkeypatch):
        # The kernel resolves the env preference against availability:
        # stdlib is always importable, so asking for it must stick.
        from repro.core import kernel

        monkeypatch.setenv(config.ENV_ENGINE, "stdlib")
        assert kernel.default_backend() == kernel.STDLIB_BACKEND
        monkeypatch.delenv(config.ENV_ENGINE)
        assert kernel.default_backend() in kernel.available_backends()


class TestMpStart:
    def test_default_is_available(self, monkeypatch):
        monkeypatch.delenv(config.ENV_MP_START, raising=False)
        import multiprocessing

        assert config.mp_start() in multiprocessing.get_all_start_methods()

    def test_unknown_method_is_loud(self, monkeypatch):
        monkeypatch.setenv(config.ENV_MP_START, "teleport")
        with pytest.raises(ValueError, match="REPRO_MP_START"):
            config.mp_start()


class TestRegistry:
    def test_every_knob_described(self):
        names = {knob.name for knob in config.KNOBS}
        assert names == {
            "REPRO_WORKERS",
            "REPRO_MP_START",
            "REPRO_DISABLE_NUMPY",
            "REPRO_ENGINE",
            "REPRO_OBS_SIDECAR",
            "REPRO_SERVE_WORKERS",
            "REPRO_ARTIFACT_MMAP",
            "REPRO_ARTIFACT_VERIFY",
        }
        rows = config.describe()
        assert {row["name"] for row in rows} == names
        assert all(row["help"] for row in rows)

    def test_pool_module_delegates(self, monkeypatch):
        from repro.parallel import pool

        monkeypatch.setenv(config.ENV_WORKERS, "5")
        assert pool.resolve_workers() == 5
        assert pool.ENV_WORKERS == config.ENV_WORKERS
        assert pool.ENV_START == config.ENV_MP_START
