"""Tests for the construction dispatch layer."""

import random

import pytest

from repro.core.construction import (
    STRATEGIES,
    ConstructionReport,
    best_from_random,
    build_tree,
)


class TestDispatch:
    @pytest.mark.parametrize("strategy", ["random", "quick_ordering", "oapt"])
    def test_strategies_build_valid_trees(self, internet2_classifier, strategy):
        universe = internet2_classifier.universe
        report = build_tree(universe, strategy=strategy, rng=random.Random(1))
        assert report.strategy == strategy
        assert report.tree.leaf_count() == universe.atom_count
        assert report.elapsed_s >= 0.0
        assert report.average_depth == pytest.approx(report.tree.average_depth())

    def test_best_from_random_counts_trials(self, internet2_classifier):
        universe = internet2_classifier.universe
        report = build_tree(
            universe, strategy="best_from_random", rng=random.Random(1), trials=5
        )
        assert report.trials == 5

    def test_unknown_strategy_rejected(self, internet2_classifier):
        with pytest.raises(ValueError):
            build_tree(internet2_classifier.universe, strategy="nope")

    def test_strategy_list_is_exported(self):
        assert "oapt" in STRATEGIES

    def test_report_describe(self, internet2_classifier):
        report = build_tree(internet2_classifier.universe, strategy="oapt")
        text = report.describe()
        assert "oapt" in text and "ms" in text


class TestBestFromRandom:
    def test_returns_minimum_of_trials(self, internet2_classifier):
        universe = internet2_classifier.universe
        tree, depths = best_from_random(universe, trials=10, rng=random.Random(3))
        assert len(depths) == 10
        assert tree.average_depth() == pytest.approx(min(depths))

    def test_zero_trials_rejected(self, internet2_classifier):
        with pytest.raises(ValueError):
            best_from_random(internet2_classifier.universe, trials=0)

    def test_deterministic_given_seed(self, internet2_classifier):
        universe = internet2_classifier.universe
        _, depths_a = best_from_random(universe, trials=5, rng=random.Random(9))
        _, depths_b = best_from_random(universe, trials=5, rng=random.Random(9))
        assert depths_a == depths_b
