"""Cross-substrate consistency: BDDs vs wildcards vs direct matching.

Every :class:`Match` has three independent interpretations in the library
(a BDD cube, a ternary wildcard, and direct per-field comparison). They
were implemented separately and serve different subsystems; these
property tests pin them to each other exactly.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDDManager, Function
from repro.headerspace.fields import HeaderLayout
from repro.headerspace.header import Packet
from repro.network.rules import Match

LAYOUT = HeaderLayout([("a", 4), ("b", 3), ("c", 5)])  # 12 bits, exhaustive


@st.composite
def matches(draw) -> Match:
    match = Match.any()
    for field in LAYOUT.fields:
        if not draw(st.booleans()):
            continue
        prefix_len = draw(st.integers(min_value=0, max_value=field.width))
        value = draw(st.integers(min_value=0, max_value=field.max_value))
        match = match.with_prefix(field.name, value, prefix_len)
    return match


@given(matches())
@settings(max_examples=150)
def test_bdd_wildcard_direct_agree(match):
    manager = BDDManager(LAYOUT.total_width)
    bdd = Function.cube(manager, match.to_literals(LAYOUT))
    wildcard = match.to_wildcard(LAYOUT)
    for header in range(1 << LAYOUT.total_width):
        direct = match.matches(Packet(LAYOUT, header))
        assert bdd.evaluate(header) == direct
        assert wildcard.matches(header) == direct


@given(matches(), matches())
@settings(max_examples=100)
def test_intersection_consistency(match_a, match_b):
    """Wildcard intersection and BDD conjunction denote the same set."""
    manager = BDDManager(LAYOUT.total_width)
    bdd = Function.cube(manager, match_a.to_literals(LAYOUT)) & Function.cube(
        manager, match_b.to_literals(LAYOUT)
    )
    overlap = match_a.to_wildcard(LAYOUT).intersect(match_b.to_wildcard(LAYOUT))
    if overlap is None:
        assert bdd.is_false
        return
    for header in range(1 << LAYOUT.total_width):
        assert overlap.matches(header) == bdd.evaluate(header)


@given(matches())
@settings(max_examples=100)
def test_sat_count_matches_wildcard_count(match):
    manager = BDDManager(LAYOUT.total_width)
    bdd = Function.cube(manager, match.to_literals(LAYOUT))
    assert bdd.sat_count() == match.to_wildcard(LAYOUT).count()
