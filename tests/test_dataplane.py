"""Tests for the compiled DataPlane: labeling, indexes, and update diffs."""

import pytest

from repro.headerspace.fields import dst_ip_layout, parse_ipv4
from repro.network.builder import Network
from repro.network.dataplane import ACL_OUT, FORWARD, DataPlane, PredicateChange
from repro.network.rules import AclRule, ForwardingRule, Match
from repro.network.tables import Acl


def small_network() -> Network:
    network = Network(dst_ip_layout(), name="small")
    network.add_box("a")
    network.add_box("b")
    network.link("a", "to_b", "b", "to_a")
    network.attach_host("b", "cust", "h1")
    network.add_forwarding_rule(
        "a", Match.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8), "to_b", 8
    )
    network.add_forwarding_rule(
        "b", Match.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8), "cust", 8
    )
    return network


def rule(text: str, plen: int, port: str) -> ForwardingRule:
    return ForwardingRule(
        Match.prefix("dst_ip", parse_ipv4(text), plen), (port,), priority=plen
    )


class TestCompilation:
    def test_one_predicate_per_live_port(self):
        dp = DataPlane(small_network())
        assert len(dp) == 2
        kinds = {p.kind for p in dp.predicates()}
        assert kinds == {FORWARD}

    def test_pids_are_stable_and_sorted(self):
        dp = DataPlane(small_network())
        pids = [p.pid for p in dp.predicates()]
        assert pids == sorted(pids)
        assert dp.predicate(pids[0]).pid == pids[0]

    def test_acl_predicates_compiled(self):
        network = small_network()
        network.add_output_acl(
            "b", "cust", [AclRule(Match.any(), permit=True)]
        )
        dp = DataPlane(network)
        acl_pred = dp.output_acl_predicate("b", "cust")
        assert acl_pred is not None and acl_pred.kind == ACL_OUT
        assert acl_pred.fn.is_true

    def test_forwarding_entries_index(self):
        dp = DataPlane(small_network())
        entries = dp.forwarding_entries("a")
        assert [e.port for e in entries] == ["to_b"]
        assert dp.forwarding_entries("missing") == []

    def test_repr(self):
        assert "2 predicates" in repr(DataPlane(small_network()))


class TestUpdates:
    def test_insert_changes_only_affected_port(self):
        dp = DataPlane(small_network())
        changes = dp.insert_rule("a", rule("10.1.0.0", 16, "to_b"))
        # Rule is a subset of the existing /8 to the same port: no change.
        assert changes == []

    def test_insert_new_port_adds_predicate(self):
        dp = DataPlane(small_network())
        network = dp.network
        network.attach_host("a", "cust", "h2")
        changes = dp.insert_rule("a", rule("10.9.0.0", 16, "cust"))
        assert len(changes) == 2  # new cust predicate + shrunk to_b predicate
        added_ports = {c.added.port for c in changes if c.added}
        assert "cust" in added_ports

    def test_insert_then_remove_round_trips(self):
        dp = DataPlane(small_network())
        before = {p.port: p.fn.node for p in dp.forwarding_entries("a")}
        new_rule = rule("10.9.0.0", 16, "to_b")
        dp.insert_rule("a", new_rule)
        dp.remove_rule("a", new_rule)
        after = {p.port: p.fn.node for p in dp.forwarding_entries("a")}
        assert before == after

    def test_changed_predicate_gets_fresh_pid(self):
        network = small_network()
        network.attach_host("a", "cust", "h2")
        dp = DataPlane(network)
        old = {p.pid for p in dp.predicates()}
        changes = dp.insert_rule("a", rule("10.9.0.0", 16, "cust"))
        for change in changes:
            if change.added is not None:
                assert change.added.pid not in old
            if change.removed is not None:
                assert change.removed.pid in old

    def test_acl_update_diff(self):
        network = small_network()
        dp = DataPlane(network)
        changes = dp.set_output_acl(
            "b", "cust", Acl([AclRule(Match.any(), permit=True)])
        )
        assert len(changes) == 1
        assert changes[0].removed is None
        # Updating to an equivalent ACL is a no-op diff.
        changes = dp.set_output_acl(
            "b", "cust", Acl([], default_permit=True)
        )
        assert changes == []

    def test_removing_only_rule_retires_port_predicate(self):
        network = Network(dst_ip_layout())
        network.add_box("a")
        network.attach_host("a", "p", "h")
        only = rule("10.0.0.0", 8, "p")
        network.box("a").table.add(only)
        dp = DataPlane(network)
        assert len(dp.forwarding_entries("a")) == 1
        changes = dp.remove_rule("a", only)
        assert len(changes) == 1
        assert changes[0].added is None
        assert dp.forwarding_entries("a") == []


class TestPredicateChange:
    def test_empty_change_rejected(self):
        with pytest.raises(ValueError):
            PredicateChange(removed=None, added=None)
