"""Tests for dataset, workload, and update generators."""

from __future__ import annotations

import random

import pytest

from repro.core.atomic import AtomicUniverse
from repro.datasets import (
    INTERNET2_LINKS,
    INTERNET2_ROUTERS,
    internet2_like,
    pareto_atom_counts,
    pareto_over_atoms,
    random_headers,
    random_network,
    rule_update_stream,
    stanford_like,
    toy_network,
    uniform_over_atoms,
)
from repro.datasets.workloads import PacketTrace
from repro.network.dataplane import DataPlane


class TestInternet2Like:
    def test_topology_shape(self, internet2_net):
        assert set(internet2_net.boxes) == set(INTERNET2_ROUTERS)
        # Every physical link is two directed links.
        assert sum(1 for _ in internet2_net.topology.links()) >= 2 * len(
            INTERNET2_LINKS
        )

    def test_every_router_routes_every_prefix(self, internet2_net):
        counts = {
            name: len(box.table) for name, box in internet2_net.boxes.items()
        }
        assert len(set(counts.values())) == 1  # identical rule counts

    def test_deterministic_by_seed(self):
        a = internet2_like(prefixes_per_router=2, seed=7)
        b = internet2_like(prefixes_per_router=2, seed=7)
        assert a.stats() == b.stats()
        sample = sorted(a.boxes)[0]
        rules_a = [rule.describe() for rule in a.box(sample).table]
        rules_b = [rule.describe() for rule in b.box(sample).table]
        assert rules_a == rules_b

    def test_scale_parameter(self):
        small = internet2_like(prefixes_per_router=1, te_fraction=0.0)
        large = internet2_like(prefixes_per_router=3, te_fraction=0.0)
        assert large.rule_count() == 3 * small.rule_count()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            internet2_like(prefixes_per_router=0)

    def test_all_destinations_reachable(self, internet2_classifier):
        """Forwarding correctness: from every router, a packet to any
        customer prefix reaches some host."""
        rng = random.Random(0)
        network = internet2_classifier.dataplane.network
        hosts = [host for _, host in network.topology.hosts()]
        trace = uniform_over_atoms(internet2_classifier.universe, 30, rng)
        reached = set()
        for header in trace.headers:
            behavior = internet2_classifier.query(header, "KANS")
            reached |= behavior.delivered_hosts()
        assert reached <= set(hosts)
        assert reached  # at least some atoms are deliverable


class TestStanfordLike:
    def test_sixteen_boxes(self, stanford_net):
        assert len(stanford_net.boxes) == 16

    def test_has_acls(self, stanford_net):
        assert stanford_net.acl_rule_count() > 0

    def test_five_tuple_layout(self, stanford_net):
        assert stanford_net.layout.total_width == 104

    def test_acl_templates_bound_distinct_predicates(self):
        network = stanford_like(acl_templates=1, seed=3)
        dp = DataPlane(network)
        acl_nodes = {
            p.fn.node for p in dp.predicates() if p.kind == "acl_out"
        }
        assert len(acl_nodes) <= 1 or len(acl_nodes) <= 2

    def test_zone_isolation_of_subnets(self, stanford_classifier):
        """A packet to zone 1's subnet entering at another zone must go
        via a backbone, never directly zone-to-zone."""
        from repro.headerspace.header import Packet

        layout = stanford_classifier.dataplane.layout
        packet = Packet.of(layout, dst_ip="171.65.1.5", src_ip="171.70.0.1")
        behavior = stanford_classifier.query(packet, "zr05")
        for path in behavior.paths():
            if len(path) > 1:
                assert path[1] in ("bbra", "bbrb")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            stanford_like(subnets_per_zone=0)


class TestRandomNetwork:
    def test_connectivity(self):
        network = random_network(boxes=5, seed=1)
        # Spanning-tree construction guarantees every box has a link.
        degrees = {name: network.topology.degree(name) for name in network.boxes}
        assert all(degree > 0 for degree in degrees.values())

    def test_needs_two_boxes(self):
        with pytest.raises(ValueError):
            random_network(boxes=1)


class TestWorkloads:
    def test_uniform_trace_headers_belong_to_atoms(self, internet2_classifier):
        rng = random.Random(1)
        universe = internet2_classifier.universe
        trace = uniform_over_atoms(universe, 50, rng)
        for header, atom_id in zip(trace.headers, trace.atom_ids):
            assert universe.atom_fn(atom_id).evaluate(header)

    def test_uniform_trace_is_roughly_uniform(self, internet2_classifier):
        rng = random.Random(2)
        universe = internet2_classifier.universe
        trace = uniform_over_atoms(universe, 2000, rng)
        histogram = trace.atom_histogram()
        expected = 2000 / universe.atom_count
        assert max(histogram.values()) < expected * 4

    def test_pareto_counts_are_heavy_tailed(self, internet2_classifier):
        rng = random.Random(3)
        counts = pareto_atom_counts(internet2_classifier.universe, rng)
        values = sorted(counts.values())
        # Median near the base, max far above it (the paper's "half have
        # 1,000 packets, some have more than 20,000").
        median = values[len(values) // 2]
        assert median < 3000
        assert max(values) > 4 * median

    def test_pareto_trace_skewed(self, internet2_classifier):
        rng = random.Random(4)
        universe = internet2_classifier.universe
        trace = pareto_over_atoms(universe, 3000, rng)
        histogram = trace.atom_histogram()
        expected = 3000 / universe.atom_count
        assert max(histogram.values()) > expected * 3

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            PacketTrace((1, 2), (1,))

    def test_random_headers_in_range(self):
        from repro.headerspace.fields import dst_ip_layout

        rng = random.Random(5)
        headers = random_headers(dst_ip_layout(), 100, rng)
        assert all(0 <= h < 1 << 32 for h in headers)


class TestUpdateStream:
    def test_removals_only_touch_inserted_rules(self, internet2_net):
        rng = random.Random(6)
        stream = rule_update_stream(internet2_net, 60, rng)
        inserted = set()
        for update in stream:
            key = (update.box, update.rule)
            if update.kind == "insert":
                inserted.add(key)
            else:
                assert key in inserted
                inserted.discard(key)

    def test_stream_replayable_against_dataplane(self):
        network = internet2_like(prefixes_per_router=2)
        dp = DataPlane(network)
        rng = random.Random(7)
        for update in rule_update_stream(network, 25, rng):
            if update.kind == "insert":
                dp.insert_rule(update.box, update.rule)
            else:
                dp.remove_rule(update.box, update.rule)
        universe = AtomicUniverse.compute(dp.manager, dp.predicates())
        assert universe.verify_partition()

    def test_kind_validation(self):
        from repro.datasets.updates import RuleUpdate
        from repro.network.rules import ForwardingRule, Match

        with pytest.raises(ValueError):
            RuleUpdate("upsert", "a", ForwardingRule(Match.any(), (), 0))


class TestToyNetwork:
    def test_shape(self):
        network = toy_network()
        assert set(network.boxes) == {"b1", "b2"}
        assert network.rule_count() == 5
