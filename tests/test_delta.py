"""Tests for behavior deltas (fault localization primitive)."""

from __future__ import annotations

import random

import pytest

from repro.core.classifier import APClassifier
from repro.core.delta import behavior_delta, diff_behaviors, first_divergence
from repro.datasets import internet2_like, toy_network
from repro.headerspace.fields import parse_ipv4
from repro.network.dataplane import DataPlane
from repro.network.rules import ForwardingRule, Match


def classifier_pair(mutate):
    """Two classifiers over one manager: baseline and mutated."""
    network_a = internet2_like(prefixes_per_router=2)
    classifier_a = APClassifier.build(network_a)
    network_b = internet2_like(prefixes_per_router=2)
    dataplane_b = DataPlane(network_b, classifier_a.dataplane.manager)
    mutate(network_b, dataplane_b)
    classifier_b = APClassifier.from_dataplane(dataplane_b)
    return classifier_a, classifier_b


class TestDiffBehaviors:
    def test_identical_behaviors_equal(self):
        classifier = APClassifier.build(toy_network())
        atom = classifier.classify(parse_ipv4("10.1.0.1"))
        a = classifier.behavior_of_atom(atom, "b1")
        b = classifier.behavior_of_atom(atom, "b1")
        assert not diff_behaviors(a, b)

    def test_different_ingress_differs(self):
        classifier = APClassifier.build(toy_network())
        atom = classifier.classify(parse_ipv4("10.3.0.1"))
        at_b1 = classifier.behavior_of_atom(atom, "b1")
        at_b2 = classifier.behavior_of_atom(atom, "b2")
        assert diff_behaviors(at_b1, at_b2)


class TestFirstDivergence:
    def test_divergence_point(self):
        # 10.1.0.0/16 is homed at ATLA; SEAT reaches it via LOSA and HOUS.
        # A /24 detour installed at HOUS (on that path) must show up.
        classifier_a, classifier_b = classifier_pair(
            lambda net, dp: dp.insert_rule(
                "HOUS",
                ForwardingRule(
                    Match.prefix("dst_ip", parse_ipv4("10.1.0.0"), 24),
                    ("to_KANS",),
                    priority=24,
                ),
            )
        )
        rng = random.Random(0)
        deltas = behavior_delta(classifier_a, classifier_b, "SEAT", rng)
        assert deltas
        for delta in deltas:
            assert delta.diverges_at is not None
            assert delta.diverges_at in delta.before.boxes_traversed()

    def test_no_divergence_is_none(self):
        classifier = APClassifier.build(toy_network())
        atom = classifier.classify(parse_ipv4("10.1.0.1"))
        behavior = classifier.behavior_of_atom(atom, "b1")
        assert first_divergence(behavior, behavior) is None


class TestBehaviorDelta:
    def test_no_change_no_deltas(self):
        classifier_a, classifier_b = classifier_pair(lambda net, dp: None)
        assert behavior_delta(classifier_a, classifier_b, "CHIC") == []

    def test_detects_blackhole(self):
        classifier_a, classifier_b = classifier_pair(
            lambda net, dp: dp.insert_rule(
                "WASH", ForwardingRule(Match.any(), ("dead_end",), priority=32)
            )
        )
        deltas = behavior_delta(classifier_a, classifier_b, "WASH")
        assert deltas
        # All deltas report WASH-adjacent divergence.
        for delta in deltas:
            assert "WASH" in delta.before.boxes_traversed()
            assert delta.describe()

    def test_change_far_from_ingress_invisible_if_unreachable(self):
        """A change on a box no class from this ingress traverses yields
        no deltas from that ingress."""
        classifier_a, classifier_b = classifier_pair(
            lambda net, dp: dp.insert_rule(
                "SEAT",
                ForwardingRule(
                    Match.prefix("dst_ip", parse_ipv4("10.1.0.0"), 30),
                    ("to_SALT",),
                    priority=30,
                ),
            )
        )
        # From SEAT itself the change may matter; pick an ingress whose
        # traffic to that /30 never routes via SEAT.
        deltas_elsewhere = behavior_delta(classifier_a, classifier_b, "ATLA")
        for delta in deltas_elsewhere:
            assert "SEAT" in delta.before.boxes_traversed() or (
                "SEAT" in delta.after.boxes_traversed()
            )

    def test_cross_manager_fallback(self):
        """Independent builds (separate managers) still find the change."""
        classifier_a = APClassifier.build(toy_network())
        network_b = toy_network()
        # Remove the 10.3.0.0/16 rule at b2: that class loses delivery.
        box = network_b.box("b2")
        victim = next(
            rule
            for rule in box.table
            if rule.match.constraint_for("dst_ip").value == parse_ipv4("10.3.0.0")
        )
        box.table.remove(victim)
        classifier_b = APClassifier.build(network_b)
        deltas = behavior_delta(classifier_a, classifier_b, "b2")
        assert deltas
        changed_hosts = {
            frozenset(delta.before.delivered_hosts()) for delta in deltas
        }
        assert frozenset({"h2"}) in changed_hosts
