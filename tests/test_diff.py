"""Tests for differential and what-if queries (``repro.diff``).

The central invariants pinned here:

* ``diff(G, G)`` is empty for any generation G (identity);
* reported volumes are exact -- the changed regions partition precisely
  the headers whose classification differs, cross-checked by brute-force
  enumeration on a small universe;
* what-if queries run on a shadow fork and leave the live classifier
  bit-identical;
* two artifacts loaded side by side are fully isolated (independent
  managers), and cross-manager diffs are exact;
* the serving layer answers diff/what-if over both the JSON-line and
  the framed wire protocol without disturbing concurrent classify load.
"""

from __future__ import annotations

import asyncio
import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import persist
from repro.core.classifier import APClassifier
from repro.core.delta import diff_behaviors
from repro.datasets import internet2_like, random_network, toy_network
from repro.datasets.updates import rule_update_stream
from repro.diff import (
    diff_generations,
    fork_shadow,
    format_rule_spec,
    parse_rule_spec,
    what_if,
)
from repro.headerspace.fields import HeaderLayout, parse_ipv4
from repro.network.builder import Network
from repro.network.rules import ForwardingRule, Match
from repro.serve import QueryService, start_tcp_server
from repro.serve import proto


def run(coro):
    return asyncio.run(coro)


def small_network(detour: bool = False) -> Network:
    """A 6-bit universe: every header enumerable (64 of them).

    Three boxes in a line; ``a`` splits the space between ``b`` (low
    half) and ``c`` (high half).  With ``detour=True`` a /3 exception at
    ``a`` re-routes an eighth of the space from ``b`` to ``c``.
    """
    layout = HeaderLayout([("dst", 6)])
    net = Network(layout, name="small")
    for name in ("a", "b", "c"):
        net.add_box(name)
    net.link("a", "to_b", "b", "from_a")
    net.link("a", "to_c", "c", "from_a")
    net.attach_host("b", "to_hb", "hb")
    net.attach_host("c", "to_hc", "hc")
    net.add_forwarding_rule("a", Match.prefix("dst", 0b000000, 1), "to_b", 1)
    net.add_forwarding_rule("a", Match.prefix("dst", 0b100000, 1), "to_c", 1)
    net.add_forwarding_rule("b", Match.any(), "to_hb", 0)
    net.add_forwarding_rule("c", Match.any(), "to_hc", 0)
    if detour:
        net.add_forwarding_rule(
            "a", Match.prefix("dst", 0b010000, 3), "to_c", 3
        )
    return net


class TestRuleSpecs:
    def test_parse_round_trip(self):
        layout = toy_network().layout
        box, rule = parse_rule_spec("b1:dst_ip=10.3.0.0/24->p2", layout)
        assert box == "b1"
        assert rule.out_ports == ("p2",)
        assert rule.priority == 24
        assert format_rule_spec(box, rule, layout) == (
            "b1:dst_ip=10.3.0.0/24->p2@24"
        )

    def test_parse_drop_and_priority(self):
        layout = toy_network().layout
        _, rule = parse_rule_spec("b1:dst_ip=10.1.0.0/16->drop@99", layout)
        assert rule.out_ports == ()
        assert rule.priority == 99

    def test_parse_multiport(self):
        layout = toy_network().layout
        _, rule = parse_rule_spec("b1:dst_ip=10.1.0.0/16->p1,p2", layout)
        assert rule.out_ports == ("p1", "p2")

    @pytest.mark.parametrize(
        "bad",
        [
            "no-arrow-here",
            "dst_ip=10.0.0.0/8->p1",  # missing BOX:
            "b1:dst_ip=10.0.0.0->p1",  # missing /PLEN
            "b1:nope=10.0.0.0/8->p1",  # unknown field
            "b1:dst_ip=10.0.0.0/40->p1",  # prefix too long
            "b1:dst_ip=10.0.0.0/8->",  # empty action
            "b1:dst_ip=10.0.0.0/8->p1@zzz",  # bad priority
        ],
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_rule_spec(bad, toy_network().layout)


class TestDiffIdentity:
    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_diff_of_identical_generations_is_empty(self, seed):
        """diff(G, G) == empty set, for arbitrary generated planes."""
        network = random_network(boxes=4, extra_links=2, prefixes=6, seed=seed)
        classifier = APClassifier.build(network)
        ingress = sorted(network.boxes)[0]
        report = diff_generations(classifier, classifier, ingress)
        assert report.is_empty
        assert report.changed_volume == 0
        assert report.changed_share() == 0.0

    def test_identity_across_artifact_reload(self, tmp_path):
        """A generation diffed against its own reloaded artifact: empty."""
        classifier = APClassifier.build(internet2_like(prefixes_per_router=2))
        path = tmp_path / "gen.apc"
        persist.save(classifier, path)
        reloaded = persist.load(path)
        report = diff_generations(classifier, reloaded, "SEAT")
        assert report.cross_manager
        assert report.is_empty

    def test_layout_mismatch_rejected(self):
        a = APClassifier.build(toy_network())
        b = APClassifier.build(small_network())
        with pytest.raises(ValueError, match="header layouts"):
            diff_generations(a, b, "b1")


class TestBruteForce:
    """Exactness on a fully enumerable universe (64 headers)."""

    def test_volumes_match_enumeration(self):
        before = APClassifier.build(small_network())
        after = APClassifier.build(small_network(detour=True))
        report = diff_generations(before, after, "a")
        assert not report.is_empty

        changed = set()
        for header in range(64):
            b = before.query(header, "a")
            a = after.query(header, "a")
            if diff_behaviors(b, a):
                changed.add(header)
        # The detour moves exactly the /3 at 0b010000: 8 headers.
        assert len(changed) == 8
        assert report.changed_volume == len(changed)
        assert report.total_volume == 64

        # Every changed header lies in exactly one reported region, and
        # no unchanged header lies in any (regions are a partition of
        # the changed set).
        for header in range(64):
            containing = [
                entry
                for entry in report.entries
                if entry.region.evaluate(header)
            ]
            assert len(containing) == (1 if header in changed else 0)

        # Witnesses really are changed headers from their own region.
        for entry in report.entries:
            assert entry.region.evaluate(entry.witness)
            assert entry.witness in changed

    def test_volume_sum_is_changed_volume(self):
        before = APClassifier.build(small_network())
        after = APClassifier.build(small_network(detour=True))
        report = diff_generations(
            before, after, "a", rng=random.Random(7)
        )
        assert sum(e.volume for e in report.entries) == report.changed_volume

    def test_internet2_churn_matches_reclassification(self, tmp_path):
        """A 16-update churn burst: diff vs brute-force sampled headers."""
        network = internet2_like(prefixes_per_router=2)
        before = APClassifier.build(network)
        path = tmp_path / "before.apc"
        persist.save(before, path)

        after = persist.load(path)
        after.set_maintenance("incremental")
        rng = random.Random(0)
        applied = 0
        for update in rule_update_stream(
            network, 16, rng, insert_fraction=1.0
        ):
            if update.kind == "insert":
                after.insert_rule(update.box, update.rule)
            else:
                after.remove_rule(update.box, update.rule)
            applied += 1
        assert applied == 16

        report = diff_generations(before, after, "SEAT")
        assert not report.is_empty
        assert 0 < report.changed_volume < report.total_volume

        # Sampled brute force: each header's membership in the changed
        # region set must agree with behavior reclassification.
        sample_rng = random.Random(3)
        headers = [
            sample_rng.getrandbits(report.num_vars) for _ in range(128)
        ]
        for entry in report.entries:
            headers.append(entry.witness)
        for header in headers:
            behavior_changed = bool(
                diff_behaviors(
                    before.query(header, "SEAT"), after.query(header, "SEAT")
                )
            )
            in_regions = sum(
                1 for e in report.entries if e.region.evaluate(header)
            )
            assert in_regions == (1 if behavior_changed else 0)


class TestWhatIfShadow:
    def test_live_classifier_untouched(self):
        live = APClassifier.build(toy_network())
        baseline_json = persist.classifier_to_json(live)
        baseline_atoms = live.classify_batch(range(0, 1 << 16, 997))
        baseline_version = live.tree.version

        report = what_if(
            live,
            "b1",
            add=[parse_rule_spec(
                "b1:dst_ip=10.2.0.0/16->drop@99", live.dataplane.layout
            )],
        )
        assert not report.diff.is_empty
        # 10.2/16 delivered before, dropped after: exactly 2^16 headers.
        assert report.diff.changed_volume == 1 << 16

        # Bit-identical live state: snapshot text, answers, and version.
        assert persist.classifier_to_json(live) == baseline_json
        assert live.classify_batch(range(0, 1 << 16, 997)) == baseline_atoms
        assert live.tree.version == baseline_version

    def test_fork_shadow_is_isolated(self):
        live = APClassifier.build(toy_network())
        shadow = fork_shadow(live)
        assert shadow.dataplane.manager is not live.dataplane.manager
        before_json = persist.classifier_to_json(live)
        shadow.insert_rule(
            "b1",
            ForwardingRule(
                Match.prefix("dst_ip", parse_ipv4("10.9.0.0"), 16),
                (),
                priority=16,
            ),
        )
        assert persist.classifier_to_json(live) == before_json

    def test_what_if_requires_rules(self):
        live = APClassifier.build(toy_network())
        with pytest.raises(ValueError, match="at least one rule"):
            what_if(live, "b1")

    def test_remove_then_report_applied(self):
        live = APClassifier.build(toy_network())
        spec = "b1:dst_ip=10.2.0.0/16->drop@99"
        box, rule = parse_rule_spec(spec, live.dataplane.layout)
        report = what_if(live, "b1", add=[(box, rule)])
        assert report.applied == [f"+{spec}"]
        payload = report.to_json()
        assert payload["applied"] == [f"+{spec}"]
        assert payload["shadow_build_s"] >= 0.0
        # Strict JSON: must serialize without NaN/Infinity.
        json.dumps(payload, allow_nan=False)


class TestDualArtifactIsolation:
    """Two loaded artifacts never share state (regression for the
    dual-``load_artifact`` isolation audit)."""

    def test_loads_have_independent_managers(self, tmp_path):
        classifier = APClassifier.build(internet2_like(prefixes_per_router=2))
        path_a = tmp_path / "a.apc"
        path_b = tmp_path / "b.apc"
        persist.save(classifier, path_a)
        persist.save(classifier, path_b)

        gen_a = persist.load(path_a)
        gen_b = persist.load(path_b)
        assert gen_a.dataplane.manager is not gen_b.dataplane.manager
        assert gen_a.tree is not gen_b.tree

        # Mutating one load must not leak into the other.
        b_json = persist.classifier_to_json(gen_b)
        gen_a.set_maintenance("incremental")
        gen_a.insert_rule(
            "SEAT",
            ForwardingRule(
                Match.prefix("dst_ip", parse_ipv4("10.1.0.0"), 24),
                ("to_SALT",),
                priority=24,
            ),
        )
        assert persist.classifier_to_json(gen_b) == b_json

        # And a cross-manager diff between the two loads stays exact.
        report = diff_generations(gen_b, gen_a, "SEAT")
        assert report.cross_manager
        assert not report.is_empty
        for entry in report.entries:
            assert entry.region.evaluate(entry.witness)


class TestServeDiff:
    def test_service_diff_and_what_if(self, tmp_path):
        classifier = APClassifier.build(toy_network())
        path = tmp_path / "gen.apc"
        persist.save(classifier, path)

        async def scenario():
            async with QueryService(classifier, max_delay_s=0) as service:
                same = await service.diff_generation(str(path), "b1")
                answer = await service.what_if(
                    "b1", add=["b1:dst_ip=10.2.0.0/16->drop@99"]
                )
                # Live serving still answers mid-flight.
                atom = await service.classify(parse_ipv4("10.2.0.1"))
                return same, answer, atom

        same, answer, atom = run(scenario())
        assert same["changed_classes"] == 0
        assert same["changed_volume"] == 0
        assert answer["changed_volume"] == 1 << 16
        assert answer["applied"] == ["+b1:dst_ip=10.2.0.0/16->drop@99"]
        assert atom == classifier.classify(parse_ipv4("10.2.0.1"))

    def test_json_line_ops(self, tmp_path):
        classifier = APClassifier.build(toy_network())
        path = tmp_path / "gen.apc"
        persist.save(classifier, path)

        async def scenario():
            async with QueryService(classifier, max_delay_s=0) as service:
                server = await start_tcp_server(service)
                port = server.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )

                async def ask(payload):
                    writer.write((json.dumps(payload) + "\n").encode())
                    await writer.drain()
                    return json.loads(await reader.readline())

                responses = {
                    "diff": await ask(
                        {
                            "op": "diff",
                            "artifact": str(path),
                            "ingress": "b1",
                        }
                    ),
                    "whatif": await ask(
                        {
                            "op": "whatif",
                            "ingress": "b1",
                            "add": ["b1:dst_ip=10.2.0.0/16->drop@99"],
                        }
                    ),
                    "diff_no_artifact": await ask(
                        {"op": "diff", "ingress": "b1"}
                    ),
                    "whatif_no_rules": await ask(
                        {"op": "whatif", "ingress": "b1"}
                    ),
                }
                writer.close()
                await writer.wait_closed()
                server.close()
                await server.wait_closed()
                return responses

        responses = run(scenario())
        assert responses["diff"]["ok"] is True
        assert responses["diff"]["diff"]["changed_classes"] == 0
        whatif = responses["whatif"]["whatif"]
        assert responses["whatif"]["ok"] is True
        assert whatif["changed_volume"] == 1 << 16
        assert responses["diff_no_artifact"]["ok"] is False
        assert responses["whatif_no_rules"]["ok"] is False

    def test_framed_ops(self, tmp_path):
        classifier = APClassifier.build(toy_network())
        path = tmp_path / "gen.apc"
        persist.save(classifier, path)

        async def scenario():
            async with QueryService(classifier, max_delay_s=0) as service:
                server = await start_tcp_server(service)
                port = server.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )

                async def ask(ftype, payload):
                    writer.write(
                        proto.pack_frame(
                            ftype, json.dumps(payload).encode()
                        )
                    )
                    await writer.drain()
                    return await proto.read_frame(reader)

                diff_type, diff_payload = await ask(
                    proto.DIFF, {"artifact": str(path), "ingress": "b1"}
                )
                whatif_type, whatif_payload = await ask(
                    proto.WHATIF,
                    {
                        "ingress": "b1",
                        "add": ["b1:dst_ip=10.2.0.0/16->drop@99"],
                    },
                )
                writer.close()
                await writer.wait_closed()
                server.close()
                await server.wait_closed()
                return (
                    diff_type,
                    json.loads(diff_payload),
                    whatif_type,
                    json.loads(whatif_payload),
                )

        diff_type, diff_report, whatif_type, whatif_report = run(scenario())
        assert diff_type == proto.DIFF_RESULT
        assert diff_report["changed_classes"] == 0
        assert whatif_type == proto.WHATIF_RESULT
        assert whatif_report["changed_volume"] == 1 << 16

    def test_diff_under_concurrent_load_is_consistent(self):
        """A what-if racing live classify traffic never perturbs answers."""
        classifier = APClassifier.build(toy_network())
        headers = [parse_ipv4("10.1.0.1"), parse_ipv4("10.2.0.1")]
        expected = classifier.classify_batch(headers)

        async def scenario():
            async with QueryService(classifier, max_delay_s=0) as service:
                whatif_task = asyncio.create_task(
                    service.what_if(
                        "b1", add=["b1:dst_ip=10.2.0.0/16->drop@99"]
                    )
                )
                answers = []
                for _ in range(20):
                    answers.append(
                        await asyncio.gather(
                            *(service.classify(h) for h in headers)
                        )
                    )
                report = await whatif_task
                return answers, report

        answers, report = run(scenario())
        assert all(list(batch) == expected for batch in answers)
        assert report["changed_volume"] == 1 << 16
