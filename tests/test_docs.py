"""Documentation hygiene: intra-repo markdown links must resolve.

Every relative link or image in README.md and docs/ must point at a file
(or directory) that exists in the repository, and same-document anchors
must match a real heading.  External URLs are out of scope.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

DOCUMENTS = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda path: path.as_posix(),
)

#: ``[text](target)`` and ``![alt](target)``; nested brackets in the text
#: are not used in this repo's docs.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
_CODE_FENCE = re.compile(r"^(```|~~~)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def _strip_code_blocks(text: str) -> list[str]:
    lines, fenced = [], False
    for line in text.splitlines():
        if _CODE_FENCE.match(line.strip()):
            fenced = not fenced
            continue
        if not fenced:
            lines.append(line)
    return lines


def _github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor slug (enough for this repo's docs)."""
    heading = re.sub(r"[`*_]", "", heading.strip().lower())
    heading = re.sub(r"[^\w\s-]", "", heading, flags=re.UNICODE)
    return re.sub(r"\s+", "-", heading).strip("-")


def _links(document: Path) -> list[str]:
    return [
        match
        for line in _strip_code_blocks(document.read_text())
        for match in _LINK.findall(line)
    ]


def _anchors(document: Path) -> set[str]:
    return {
        _github_anchor(m.group(1))
        for line in _strip_code_blocks(document.read_text())
        if (m := _HEADING.match(line))
    }


def test_docs_exist():
    # README + docs index + benchmarks/datasets/internals/paper_mapping/
    # persistence/serving/verification
    assert len(DOCUMENTS) >= 9


@pytest.mark.parametrize("document", DOCUMENTS, ids=lambda p: p.name)
def test_intra_repo_links_resolve(document):
    broken = []
    for target in _links(document):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, anchor = target.partition("#")
        if not path_part:  # same-document anchor
            if _github_anchor(anchor) not in _anchors(document):
                broken.append(f"{target} (no such heading)")
            continue
        resolved = (document.parent / path_part).resolve()
        if not resolved.exists():
            broken.append(f"{target} (no such file)")
            continue
        if anchor and resolved.suffix == ".md":
            if _github_anchor(anchor) not in _anchors(resolved):
                broken.append(f"{target} (no such heading in target)")
    assert not broken, f"broken links in {document.name}: {broken}"


def test_readme_links_the_guides():
    readme = (REPO_ROOT / "README.md").read_text()
    for guide in (
        "docs/serving.md",
        "docs/benchmarks.md",
        "docs/paper_mapping.md",
        "docs/persistence.md",
        "docs/verification.md",
        "docs/README.md",
    ):
        assert guide in readme, f"README does not link {guide}"
