"""Smoke tests: every example script must run to completion.

Examples are the public face of the API; a refactor that breaks one
should fail the suite, not a user.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

EXAMPLES = sorted(script.name for script in EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script} failed:\n{completed.stdout[-2000:]}\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script} produced no output"
