"""Tests for the fat-tree dataset."""

from __future__ import annotations

import random

import pytest

from repro.baselines import ForwardingSimulator
from repro.core.classifier import APClassifier
from repro.core.verifier import NetworkVerifier
from repro.datasets import fattree
from repro.headerspace.header import Packet


@pytest.fixture(scope="module")
def ft4():
    network = fattree(4)
    return network, APClassifier.build(network)


class TestTopology:
    def test_box_count(self, ft4):
        network, _ = ft4
        # (k/2)^2 cores + k pods * (k/2 agg + k/2 edge) = 4 + 16.
        assert len(network.boxes) == 20

    def test_arity_validation(self):
        with pytest.raises(ValueError):
            fattree(3)
        with pytest.raises(ValueError):
            fattree(0)

    def test_host_count(self, ft4):
        network, _ = ft4
        hosts = list(network.topology.hosts())
        assert len(hosts) == 8  # k^2/2 edge switches x 1 host

    def test_scales_with_k(self):
        assert len(fattree(6).boxes) == 9 + 6 * 6
        assert fattree(6).rule_count() > fattree(4).rule_count()

    def test_hosts_per_edge(self):
        network = fattree(4, hosts_per_edge=3)
        assert len(list(network.topology.hosts())) == 24


class TestForwarding:
    def test_intra_pod_path_avoids_core(self, ft4):
        network, classifier = ft4
        packet = Packet.of(network.layout, dst_ip="10.0.1.2")
        behavior = classifier.query(packet, "edge_0_0")
        (path,) = behavior.paths()
        assert path[0] == "edge_0_0"
        assert path[-2] == "edge_0_1"
        assert not any(box.startswith("core") for box in path)

    def test_inter_pod_path_uses_core(self, ft4):
        network, classifier = ft4
        packet = Packet.of(network.layout, dst_ip="10.3.0.2")
        behavior = classifier.query(packet, "edge_0_0")
        (path,) = behavior.paths()
        assert any(box.startswith("core") for box in path)
        assert path[-1] == "h_3_0_0"

    def test_all_hosts_reachable_from_every_edge(self, ft4):
        network, classifier = ft4
        verifier = NetworkVerifier.from_classifier(classifier)
        hosts = [host for _, host in network.topology.hosts()]
        for host in hosts:
            atoms = verifier.atoms_reaching_host("edge_1_1", host)
            assert atoms, f"{host} unreachable from edge_1_1"

    def test_no_loops(self, ft4):
        _, classifier = ft4
        verifier = NetworkVerifier.from_classifier(classifier)
        for ingress in ("edge_0_0", "agg_2_1", "core_0_0"):
            assert verifier.find_loops(ingress) == frozenset()

    def test_agrees_with_forwarding_simulation(self, ft4):
        network, classifier = ft4
        simulator = ForwardingSimulator(classifier.dataplane)
        rng = random.Random(1)
        boxes = sorted(network.boxes)
        for _ in range(60):
            header = rng.getrandbits(32)
            ingress = rng.choice(boxes)
            assert sorted(map(tuple, classifier.query(header, ingress).paths())) == (
                sorted(map(tuple, simulator.query(header, ingress).paths()))
            )
