"""Unit tests for header layouts and field encoding."""

import pytest

from repro.headerspace.fields import (
    HeaderLayout,
    dst_ip_layout,
    five_tuple_layout,
    format_ipv4,
    parse_ipv4,
)


class TestIpv4Helpers:
    def test_parse_round_trip(self):
        for text in ("0.0.0.0", "10.1.2.3", "255.255.255.255", "171.64.0.1"):
            assert format_ipv4(parse_ipv4(text)) == text

    def test_parse_rejects_bad_shapes(self):
        for bad in ("10.0.0", "10.0.0.0.0", "10.0.0.256", "a.b.c.d", ""):
            with pytest.raises(ValueError):
                parse_ipv4(bad)

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            format_ipv4(1 << 32)
        with pytest.raises(ValueError):
            format_ipv4(-1)


class TestLayoutConstruction:
    def test_offsets_accumulate(self):
        layout = five_tuple_layout()
        assert layout.field("src_ip").offset == 0
        assert layout.field("dst_ip").offset == 32
        assert layout.field("src_port").offset == 64
        assert layout.field("dst_port").offset == 80
        assert layout.field("proto").offset == 96
        assert layout.total_width == 104

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            HeaderLayout([("a", 4), ("a", 4)])

    def test_empty_layout_rejected(self):
        with pytest.raises(ValueError):
            HeaderLayout([])

    def test_zero_width_field_rejected(self):
        with pytest.raises(ValueError):
            HeaderLayout([("a", 0)])

    def test_unknown_field_lookup(self):
        with pytest.raises(KeyError):
            dst_ip_layout().field("nope")

    def test_contains_and_names(self):
        layout = five_tuple_layout()
        assert "proto" in layout
        assert "nope" not in layout
        assert layout.field_names()[0] == "src_ip"

    def test_equality_and_hash(self):
        assert dst_ip_layout() == dst_ip_layout()
        assert dst_ip_layout() != five_tuple_layout()
        assert hash(dst_ip_layout()) == hash(dst_ip_layout())


class TestPacking:
    def test_pack_unpack_round_trip(self):
        layout = five_tuple_layout()
        values = {
            "src_ip": parse_ipv4("10.0.0.1"),
            "dst_ip": parse_ipv4("171.64.1.2"),
            "src_port": 40000,
            "dst_port": 80,
            "proto": 6,
        }
        assert layout.unpack(layout.pack(values)) == values

    def test_pack_defaults_missing_to_zero(self):
        layout = five_tuple_layout()
        header = layout.pack({"dst_port": 443})
        assert layout.extract(header, "dst_port") == 443
        assert layout.extract(header, "src_ip") == 0

    def test_pack_rejects_unknown_field(self):
        with pytest.raises(KeyError):
            dst_ip_layout().pack({"nope": 1})

    def test_pack_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            five_tuple_layout().pack({"proto": 256})

    def test_unpack_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            dst_ip_layout().unpack(1 << 32)

    def test_extract_positions(self):
        layout = HeaderLayout([("a", 4), ("b", 4)])
        header = layout.pack({"a": 0xA, "b": 0x5})
        assert header == 0xA5
        assert layout.extract(header, "a") == 0xA
        assert layout.extract(header, "b") == 0x5


class TestLiterals:
    def test_bit_positions(self):
        layout = five_tuple_layout()
        assert layout.bit_positions("dst_ip") == range(32, 64)

    def test_exact_literals_full_width(self):
        layout = HeaderLayout([("a", 4)])
        literals = layout.exact_literals("a", 0b1010)
        assert literals == {0: True, 1: False, 2: True, 3: False}

    def test_exact_literals_out_of_range(self):
        with pytest.raises(ValueError):
            HeaderLayout([("a", 4)]).exact_literals("a", 16)

    def test_prefix_literals_top_bits_only(self):
        layout = HeaderLayout([("a", 8)])
        literals = layout.prefix_literals("a", 0b1100_0000, 2)
        assert literals == {0: True, 1: True}

    def test_prefix_literals_zero_length_unconstrained(self):
        layout = HeaderLayout([("a", 8)])
        assert layout.prefix_literals("a", 0, 0) == {}

    def test_prefix_literals_with_offset(self):
        layout = HeaderLayout([("a", 4), ("b", 4)])
        literals = layout.prefix_literals("b", 0b1000, 1)
        assert literals == {4: True}

    def test_prefix_length_bounds(self):
        layout = HeaderLayout([("a", 4)])
        with pytest.raises(ValueError):
            layout.prefix_literals("a", 0, 5)
