"""Tests for flow-set queries (query a match, not just one packet)."""

from __future__ import annotations

import pytest

from repro.core.classifier import APClassifier
from repro.datasets import toy_network
from repro.headerspace.fields import parse_ipv4
from repro.network.rules import Match


@pytest.fixture(scope="module")
def clf():
    return APClassifier.build(toy_network())


class TestAtomsMatching:
    def test_any_match_covers_all_atoms(self, clf):
        assert clf.atoms_matching(Match.any()) == clf.universe.atom_ids()

    def test_narrow_match_selects_one_atom(self, clf):
        match = Match.prefix("dst_ip", parse_ipv4("10.1.0.0"), 17)
        atoms = clf.atoms_matching(match)
        assert atoms == {clf.classify(parse_ipv4("10.1.0.5"))}

    def test_straddling_match_selects_both_sides(self, clf):
        # 10.1.0.0/16 straddles the p3 boundary at 10.1.128.0.
        match = Match.prefix("dst_ip", parse_ipv4("10.1.0.0"), 16)
        atoms = clf.atoms_matching(match)
        assert clf.classify(parse_ipv4("10.1.0.5")) in atoms
        assert clf.classify(parse_ipv4("10.1.200.5")) in atoms
        assert len(atoms) == 2

    def test_membership_is_exact(self, clf):
        """An atom is selected iff some concrete packet of it matches."""
        match = Match.prefix("dst_ip", parse_ipv4("10.2.0.0"), 16)
        selected = clf.atoms_matching(match)
        import random

        rng = random.Random(0)
        for atom_id in clf.universe.atom_ids():
            fn = clf.universe.atom_fn(atom_id)
            match_fn = clf.dataplane.compiler.match_predicate(match)
            overlaps = not fn.disjoint(match_fn)
            assert (atom_id in selected) == overlaps


class TestQueryFlowSet:
    def test_behaviors_per_atom(self, clf):
        match = Match.prefix("dst_ip", parse_ipv4("10.1.0.0"), 16)
        behaviors = clf.query_flow_set(match, "b1")
        assert set(behaviors) == clf.atoms_matching(match)
        hosts = {
            host
            for behavior in behaviors.values()
            for host in behavior.delivered_hosts()
        }
        assert hosts == {"h1"}

    def test_update_impact_analysis(self, clf):
        """The §I workflow: a rule's match tells you which classes to
        re-verify -- and only those."""
        match = Match.prefix("dst_ip", parse_ipv4("10.3.0.0"), 16)
        affected = clf.atoms_matching(match)
        assert len(affected) == 1
        untouched = clf.universe.atom_ids() - affected
        assert untouched  # the rest of the network needs no re-check
