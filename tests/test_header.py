"""Unit tests for the Packet type."""

import pytest

from repro.headerspace.fields import dst_ip_layout, five_tuple_layout, parse_ipv4
from repro.headerspace.header import Packet


class TestConstruction:
    def test_of_with_ints(self):
        packet = Packet.of(five_tuple_layout(), dst_port=443, proto=6)
        assert packet.field("dst_port") == 443
        assert packet.field("proto") == 6

    def test_of_with_ip_strings(self):
        packet = Packet.of(five_tuple_layout(), src_ip="10.0.0.1", dst_ip="10.0.0.2")
        assert packet.field("src_ip") == parse_ipv4("10.0.0.1")
        assert packet.field("dst_ip") == parse_ipv4("10.0.0.2")

    def test_string_only_for_ip_fields(self):
        with pytest.raises(TypeError):
            Packet.of(five_tuple_layout(), dst_port="80")  # type: ignore[arg-type]

    def test_out_of_range_value_rejected(self):
        with pytest.raises(ValueError):
            Packet(dst_ip_layout(), 1 << 32)

    def test_fields_dict(self):
        packet = Packet.of(dst_ip_layout(), dst_ip="10.1.0.0")
        assert packet.fields() == {"dst_ip": parse_ipv4("10.1.0.0")}


class TestIdentity:
    def test_equality(self):
        layout = dst_ip_layout()
        assert Packet.of(layout, dst_ip="10.0.0.1") == Packet.of(
            layout, dst_ip="10.0.0.1"
        )
        assert Packet.of(layout, dst_ip="10.0.0.1") != Packet.of(
            layout, dst_ip="10.0.0.2"
        )

    def test_hashable(self):
        layout = dst_ip_layout()
        packets = {
            Packet.of(layout, dst_ip="10.0.0.1"),
            Packet.of(layout, dst_ip="10.0.0.1"),
        }
        assert len(packets) == 1

    def test_repr_shows_dotted_quads(self):
        packet = Packet.of(dst_ip_layout(), dst_ip="10.1.2.3")
        assert "10.1.2.3" in repr(packet)

    def test_repr_shows_plain_ints(self):
        packet = Packet.of(five_tuple_layout(), dst_port=80)
        assert "dst_port=80" in repr(packet)
