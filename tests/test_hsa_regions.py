"""Tests for HSA region reachability and Veriflow incremental updates."""

from __future__ import annotations

import random

import pytest

from repro.baselines import HsaQuerier, VeriflowTrie
from repro.core.classifier import APClassifier
from repro.datasets import internet2_like, toy_network
from repro.headerspace.fields import parse_ipv4
from repro.headerspace.wildcard import Wildcard, WildcardSet
from repro.network.rules import ForwardingRule, Match


class TestReachRegion:
    def test_full_space_toy(self):
        network = toy_network()
        querier = HsaQuerier(network)
        delivered = querier.reach_region(
            WildcardSet.full(32), ingress_box="b1"
        )
        assert set(delivered) == {"h1", "h2"}
        # h1 gets exactly 10.1.0.0/16 from b1.
        h1_region = delivered["h1"]
        assert h1_region.matches(parse_ipv4("10.1.200.1"))
        assert not h1_region.matches(parse_ipv4("10.2.0.1"))

    def test_reach_match(self):
        network = toy_network()
        querier = HsaQuerier(network)
        delivered = querier.reach_match(
            Match.prefix("dst_ip", parse_ipv4("10.2.0.0"), 16), "b1"
        )
        assert set(delivered) == {"h2"}
        assert delivered["h2"].matches(parse_ipv4("10.2.0.9"))
        assert not delivered["h2"].matches(parse_ipv4("10.2.200.9"))

    def test_region_agrees_with_per_packet(self):
        """For sampled packets: region membership == per-packet delivery."""
        network = internet2_like(prefixes_per_router=2)
        querier = HsaQuerier(network)
        classifier = APClassifier.build(network)
        delivered = querier.reach_region(WildcardSet.full(32), "KANS")
        rng = random.Random(1)
        for _ in range(60):
            header = rng.getrandbits(32)
            expected_hosts = classifier.query(header, "KANS").delivered_hosts()
            for host, region in delivered.items():
                assert region.matches(header) == (host in expected_hosts)
            # Hosts with no region at all must be unreachable.
            for host in expected_hosts:
                assert host in delivered

    def test_region_agrees_with_atom_propagation(self):
        """HSA region reachability vs atom-set propagation: the delivered
        region per host must contain exactly the atoms' packets."""
        from repro.core.propagation import AtomPropagation

        network = toy_network()
        classifier = APClassifier.build(network)
        querier = HsaQuerier(network)
        propagation = AtomPropagation.from_classifier(classifier)
        hsa = querier.reach_region(WildcardSet.full(32), "b1")
        atoms = propagation.propagate("b1").atoms_at_host
        rng = random.Random(2)
        for host in set(hsa) | set(atoms):
            atom_ids = atoms.get(host, frozenset())
            region = hsa.get(host, WildcardSet.empty(32))
            for atom_id in atom_ids:
                witness = classifier.universe.atom_fn(atom_id).random_sat(rng)
                assert region.matches(witness)

    def test_empty_region_delivers_nothing(self):
        querier = HsaQuerier(toy_network())
        assert querier.reach_region(WildcardSet.empty(32), "b1") == {}

    def test_input_acl_respected(self):
        from repro.network.builder import Network
        from repro.headerspace.fields import dst_ip_layout
        from repro.network.rules import AclRule

        network = Network(dst_ip_layout(), name="acl-region")
        network.add_box("a")
        network.attach_host("a", "p", "h")
        network.add_forwarding_rule(
            "a", Match.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8), "p", 8
        )
        network.add_input_acl(
            "a", "up", [AclRule(Match.prefix("dst_ip", parse_ipv4("10.1.0.0"), 16), permit=False)],
            default_permit=True,
        )
        querier = HsaQuerier(network)
        delivered = querier.reach_region(WildcardSet.full(32), "a", in_port="up")
        assert not delivered["h"].matches(parse_ipv4("10.1.0.1"))
        assert delivered["h"].matches(parse_ipv4("10.2.0.1"))


class TestVeriflowIncremental:
    def test_insert_then_query(self):
        network = toy_network()
        trie = VeriflowTrie(network)
        rule = ForwardingRule(
            Match.prefix("dst_ip", parse_ipv4("10.9.0.0"), 16), ("to_h1",), 16
        )
        network.box("b1").table.add(rule)
        trie.insert_rule("b1", rule)
        behavior = trie.query(parse_ipv4("10.9.0.1"), "b1")
        assert behavior.delivered_hosts() == {"h1"}

    def test_remove_restores(self):
        network = toy_network()
        trie = VeriflowTrie(network)
        rule = ForwardingRule(
            Match.prefix("dst_ip", parse_ipv4("10.9.0.0"), 16), ("to_h1",), 16
        )
        network.box("b1").table.add(rule)
        trie.insert_rule("b1", rule)
        network.box("b1").table.remove(rule)
        trie.remove_rule("b1", rule)
        behavior = trie.query(parse_ipv4("10.9.0.1"), "b1")
        assert behavior.is_dropped_everywhere

    def test_remove_unknown_raises(self):
        trie = VeriflowTrie(toy_network())
        rule = ForwardingRule(
            Match.prefix("dst_ip", parse_ipv4("99.0.0.0"), 8), ("x",), 8
        )
        with pytest.raises(KeyError):
            trie.remove_rule("b1", rule)

    def test_incremental_matches_rebuild(self):
        """After a batch of inserts, the trie equals a fresh build."""
        network = internet2_like(prefixes_per_router=1)
        trie = VeriflowTrie(network)
        rng = random.Random(3)
        from repro.datasets import rule_update_stream

        for update in rule_update_stream(network, 15, rng, insert_fraction=1.0):
            network.box(update.box).table.add(update.rule)
            trie.insert_rule(update.box, update.rule)
        fresh = VeriflowTrie(network)
        for _ in range(40):
            header = rng.getrandbits(32)
            incremental = {
                (r.box, r.priority, r.out_ports)
                for r in trie.matching_rules(header)
            }
            rebuilt = {
                (r.box, r.priority, r.out_ports)
                for r in fresh.matching_rules(header)
            }
            assert incremental == rebuilt
