"""Incremental atom maintenance: equivalence, splices, patches, and the
bugfixes the incremental paths lean on.

The load-bearing property is *bit-identity*: a classifier maintained
incrementally through arbitrary churn must hold exactly the universe a
from-scratch build over the surviving predicates computes -- same atom
functions, same canonical ids, same ``R`` sets, same classifications.
Everything else (local splices, in-place compiled patches, merge
bookkeeping) is an optimization over that invariant.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atomic import AtomicUniverse
from repro.core.classifier import APClassifier
from repro.core.delta import behavior_delta
from repro.core.incremental import IncrementalEngine
from repro.core.update import UpdateEngine
from repro.datasets import internet2_like, rule_update_stream
from repro.network.dataplane import DataPlane, LabeledPredicate, PredicateChange
from repro.obs import Recorder, validate_snapshot


def fresh_classifier(maintenance: str = "incremental") -> APClassifier:
    return APClassifier.build(
        internet2_like(prefixes_per_router=2), maintenance=maintenance
    )


def apply_stream(classifier: APClassifier, updates) -> None:
    for update in updates:
        if update.kind == "insert":
            classifier.insert_rule(update.box, update.rule)
        else:
            classifier.remove_rule(update.box, update.rule)


def assert_matches_scratch_build(classifier: APClassifier) -> None:
    """The maintained universe == a from-scratch build, bit for bit."""
    reference = AtomicUniverse.compute(
        classifier.dataplane.manager, classifier.dataplane.predicates()
    )
    maintained = classifier.universe.renumber_canonical()
    scratch = reference.renumber_canonical()
    atoms_a = {aid: fn.node for aid, fn in maintained.atoms().items()}
    atoms_b = {aid: fn.node for aid, fn in scratch.atoms().items()}
    assert atoms_a == atoms_b
    for labeled in classifier.dataplane.predicates():
        assert maintained.r(labeled.pid) == scratch.r(labeled.pid)


class TestEquivalenceProperty:
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_incremental_bit_identical_to_scratch(self, seed):
        classifier = fresh_classifier("incremental")
        classifier.compile()
        updates = rule_update_stream(
            classifier.dataplane.network, 10, random.Random(seed)
        )
        apply_stream(classifier, updates)
        assert_matches_scratch_build(classifier)
        # The maintained tree covers the partition exactly: classify
        # agrees with direct atom-membership evaluation, compiled and
        # interpreted paths included.
        rng = random.Random(seed + 1)
        num_vars = classifier.dataplane.manager.num_vars
        headers = [rng.getrandbits(num_vars) for _ in range(128)]
        atoms = classifier.universe.atoms()
        tree_ids = classifier.tree.classify_many(headers)
        for header, atom_id in zip(headers, tree_ids):
            assert atoms[atom_id].evaluate(header)
        assert classifier.classify_batch(headers) == tree_ids

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_engines_agree_across_churn(self, seed):
        incremental = fresh_classifier("incremental")
        tombstone = fresh_classifier("tombstone")
        updates = rule_update_stream(
            incremental.dataplane.network, 8, random.Random(seed)
        )
        apply_stream(incremental, updates)
        apply_stream(tombstone, updates)
        # The engines number atoms differently (tombstone fragments,
        # incremental stays minimal), but both must classify every
        # header into an atom whose function covers it.
        rng = random.Random(seed + 1)
        for classifier in (incremental, tombstone):
            atoms = classifier.universe.atoms()
            num_vars = classifier.dataplane.manager.num_vars
            for _ in range(64):
                header = rng.getrandbits(num_vars)
                assert atoms[classifier.classify(header)].evaluate(header)
        # After the tombstone side coalesces, both partitions are the
        # same minimal one (different managers, so compare sizes and
        # per-predicate R cardinalities rather than node ids).
        tombstone.universe.coalesce()
        assert (
            incremental.universe.atom_count == tombstone.universe.atom_count
        )


class TestChurnStormSmoke:
    def test_storm_stays_incremental_and_hot(self):
        classifier = APClassifier.build(
            internet2_like(prefixes_per_router=4), maintenance="incremental"
        )
        classifier.compile()
        engine = classifier._engine
        assert isinstance(engine, IncrementalEngine)
        updates = rule_update_stream(
            classifier.dataplane.network, 40, random.Random(7)
        )
        for update in updates:
            if update.kind == "insert":
                classifier.insert_rule(update.box, update.rule)
            else:
                classifier.remove_rule(update.box, update.rule)
            # The compiled fast path never goes stale: every structural
            # change is patched (or eagerly recompiled) in the same
            # update.
            assert classifier.compiled_fresh
        assert engine.full_rebuilds == 0
        assert classifier.tree.max_depth() <= engine.depth_budget()
        assert engine.patches > 0
        assert_matches_scratch_build(classifier)

    def test_depth_budget_triggers_full_rebuild(self):
        classifier = fresh_classifier("incremental")
        engine = classifier._engine
        engine.depth_factor = 0.0
        engine.depth_slack = 0
        updates = rule_update_stream(
            classifier.dataplane.network, 3, random.Random(3), insert_fraction=1.0
        )
        apply_stream(classifier, updates)
        assert engine.full_rebuilds > 0
        assert_matches_scratch_build(classifier)

    def test_stale_labels_rebuild_once_then_splice(self):
        # A tree with tombstone history hands the incremental engine dead
        # labels; the first removal must fall back to one full rebuild,
        # after which splices resume.
        classifier = fresh_classifier("tombstone")
        updates = rule_update_stream(
            classifier.dataplane.network, 6, random.Random(11), insert_fraction=1.0
        )
        apply_stream(classifier, updates)
        removals = [
            u for u in rule_update_stream(
                classifier.dataplane.network, 6, random.Random(11),
                insert_fraction=1.0,
            )
        ]
        classifier.remove_rule(removals[0].box, removals[0].rule)  # tombstones
        classifier.set_maintenance("incremental")
        engine = classifier._engine
        assert not engine._labels_live
        classifier.remove_rule(removals[1].box, removals[1].rule)
        assert engine.full_rebuilds == 1
        assert engine._labels_live
        assert_matches_scratch_build(classifier)


class TestObservability:
    def test_incremental_counters_and_schema(self):
        classifier = fresh_classifier("incremental")
        recorder = Recorder()
        classifier.set_recorder(recorder)
        classifier.compile()
        updates = rule_update_stream(
            classifier.dataplane.network, 12, random.Random(5)
        )
        apply_stream(classifier, updates)
        snapshot = validate_snapshot(recorder.snapshot())
        incremental = snapshot["updates"]["incremental"]
        assert incremental["patches"] == classifier._engine.patches > 0
        assert incremental["splices"] == classifier._engine.splices
        assert incremental["merges"] == classifier._engine.merges_applied
        assert incremental["full_rebuilds"] == 0
        assert snapshot["updates"]["tombstoned"] >= 0


class TestDeltaMemoization:
    def test_behavior_computed_once_per_atom(self):
        network_a = internet2_like(prefixes_per_router=2)
        classifier_a = APClassifier.build(network_a)
        network_b = internet2_like(prefixes_per_router=2)
        dataplane_b = DataPlane(network_b, classifier_a.dataplane.manager)
        from repro.headerspace.fields import parse_ipv4
        from repro.network.rules import ForwardingRule, Match

        dataplane_b.insert_rule(
            "HOUS",
            ForwardingRule(
                Match.prefix("dst_ip", parse_ipv4("10.1.0.0"), 24),
                ("to_KANS",),
                priority=24,
            ),
        )
        classifier_b = APClassifier.from_dataplane(dataplane_b)

        calls = {"a": 0, "b": 0}
        original_a = classifier_a.behavior_of_atom
        original_b = classifier_b.behavior_of_atom
        classifier_a.behavior_of_atom = lambda *args, **kw: (
            calls.__setitem__("a", calls["a"] + 1) or original_a(*args, **kw)
        )
        classifier_b.behavior_of_atom = lambda *args, **kw: (
            calls.__setitem__("b", calls["b"] + 1) or original_b(*args, **kw)
        )
        behavior_delta(classifier_a, classifier_b, "SEAT", random.Random(0))
        # Memoized: at most one behavior computation per atom per side,
        # not one per (before, after) overlap pair.
        assert 0 < calls["a"] <= classifier_a.universe.atom_count
        assert 0 < calls["b"] <= classifier_b.universe.atom_count


class TestReplayCarriesLabels:
    def test_replay_passes_original_labeled_predicate(self, toy_dataplane):
        universe = AtomicUniverse.compute(
            toy_dataplane.manager, toy_dataplane.predicates()
        )
        captured = []

        class SpyEngine(UpdateEngine):
            def add_predicate(self, labeled):
                captured.append(labeled)
                return super().add_predicate(labeled)

        engine = SpyEngine(universe, None)
        template = toy_dataplane.predicates()[0]
        labeled = LabeledPredicate(
            9001, template.kind, template.box, template.port, template.fn
        )
        replayed = engine.replay([("add", labeled), ("remove", 123456)])
        # The original object rides the journal -- not a re-fabricated
        # predicate with made-up provenance; the unknown-pid delete is
        # skipped, not fabricated either.
        assert captured == [labeled]
        assert captured[0] is labeled
        assert replayed == 1


class TestTombstonedAccounting:
    def test_pure_removal_reports_tombstoned(self, toy_dataplane):
        universe = AtomicUniverse.compute(
            toy_dataplane.manager, toy_dataplane.predicates()
        )
        recorder = Recorder()
        engine = UpdateEngine(universe, None, recorder=recorder)
        victim = toy_dataplane.predicates()[0]
        expected = len(universe.r(victim.pid))
        assert expected > 0
        results = engine.apply_all(
            [PredicateChange(removed=victim, added=None)]
        )
        assert len(results) == 1
        assert results[0].atoms_split == 0
        assert results[0].tombstoned == expected
        assert recorder.updates.tombstoned == expected
