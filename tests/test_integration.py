"""End-to-end scenarios: the management applications of Section I built on
the public API (verification, policy enforcement, fault localization)."""

from __future__ import annotations

import random

import pytest

from repro.core.classifier import APClassifier
from repro.datasets import internet2_like, uniform_over_atoms
from repro.headerspace.fields import dst_ip_layout, parse_ipv4
from repro.headerspace.header import Packet
from repro.network.builder import Network
from repro.network.rules import AclRule, ForwardingRule, Match


def chain_network() -> Network:
    """edge -> firewall -> ids -> core -> host: a policy-enforcement chain."""
    network = Network(dst_ip_layout(), name="chain")
    for name in ("edge", "fw", "ids", "core"):
        network.add_box(name)
    network.link("edge", "to_fw", "fw", "from_edge")
    network.link("fw", "to_ids", "ids", "from_fw")
    network.link("ids", "to_core", "core", "from_ids")
    network.attach_host("core", "cust", "server")
    web = Match.prefix("dst_ip", parse_ipv4("10.10.0.0"), 16)
    for box, port in (
        ("edge", "to_fw"),
        ("fw", "to_ids"),
        ("ids", "to_core"),
        ("core", "cust"),
    ):
        network.add_forwarding_rule(box, web, port, 16)
    # The firewall blocks one malicious prefix on its ingress.
    network.add_input_acl(
        "fw",
        "from_edge",
        [
            AclRule(Match.prefix("dst_ip", parse_ipv4("10.10.66.0"), 24), permit=False),
            AclRule(Match.any(), permit=True),
        ],
    )
    return network


class TestPolicyEnforcement:
    def test_waypoint_traversal(self):
        """Verify HTTP-like traffic passes firewall and IDS in order."""
        classifier = APClassifier.build(chain_network())
        packet = Packet.of(dst_ip_layout(), dst_ip="10.10.1.1")
        behavior = classifier.query(packet, "edge")
        assert behavior.boxes_traversed() == ["edge", "fw", "ids", "core"]
        assert behavior.delivered_hosts() == {"server"}

    def test_firewall_blocks_malicious_prefix(self):
        classifier = APClassifier.build(chain_network())
        packet = Packet.of(dst_ip_layout(), dst_ip="10.10.66.9")
        behavior = classifier.query(packet, "edge")
        assert behavior.is_dropped_everywhere
        assert ("fw", "input_acl") in behavior.drops()


class TestVerificationBeforeUpdate:
    """The Section I workflow: before installing a rule, query the affected
    flows; install only if behaviors stay compliant."""

    def test_detects_blackhole_before_commit(self):
        network = internet2_like(prefixes_per_router=2)
        classifier = APClassifier.build(network)
        rng = random.Random(0)
        probe = uniform_over_atoms(classifier.universe, 1, rng).headers[0]
        before = classifier.query(probe, "SEAT")
        was_delivered = bool(before.delivered_hosts())

        # Candidate update: a high-priority drop-style rule (no out port
        # reachable) -- a /0 route to a port that leads nowhere useful is
        # modeled here as a rule steering everything into a dead port.
        bad_rule = ForwardingRule(Match.any(), ("blackhole",), priority=32)
        classifier.insert_rule("SEAT", bad_rule)
        after = classifier.query(probe, "SEAT")
        # Verification catches the change: the packet no longer reaches
        # its host through SEAT.
        if was_delivered:
            assert after.delivered_hosts() != before.delivered_hosts()
        # Roll back; behavior must be restored exactly.
        classifier.remove_rule("SEAT", bad_rule)
        restored = classifier.query(probe, "SEAT")
        assert sorted(map(tuple, restored.paths())) == sorted(
            map(tuple, before.paths())
        )


class TestFaultLocalization:
    def test_compare_expected_vs_actual(self):
        """Remove a transit rule (a 'fault'), then localize the first box
        whose behavior diverges from the golden classifier's."""
        golden_net = internet2_like(prefixes_per_router=2)
        faulty_net = internet2_like(prefixes_per_router=2)
        golden = APClassifier.build(golden_net)
        faulty = APClassifier.build(faulty_net)

        rng = random.Random(1)
        header = uniform_over_atoms(golden.universe, 1, rng).headers[0]
        expected = golden.query(header, "SEAT")
        if not expected.delivered_hosts():
            pytest.skip("probe atom is undeliverable; not a localization case")
        path = expected.paths()[0]
        victim_box = path[1] if len(path) > 2 else path[0]

        # Break the victim box: remove the rule its forwarding relies on.
        packet = Packet(golden_net.layout, header)
        for rule in list(faulty_net.box(victim_box).table):
            if rule.match.matches(packet):
                faulty.remove_rule(victim_box, rule)
                break
        actual = faulty.query(header, "SEAT")
        assert sorted(map(tuple, actual.paths())) != sorted(
            map(tuple, expected.paths())
        )
        # Localize: first box where the two traces diverge.
        expected_boxes = expected.boxes_traversed()
        actual_boxes = actual.boxes_traversed()
        divergence = next(
            (
                index
                for index, (a, b) in enumerate(zip(expected_boxes, actual_boxes))
                if a != b
            ),
            min(len(expected_boxes), len(actual_boxes)),
        )
        localized = expected_boxes[min(divergence, len(expected_boxes) - 1)]
        assert localized in expected_boxes


class TestVlanStyleIsolation:
    def test_tenant_cannot_reach_other_tenant(self):
        network = Network(dst_ip_layout(), name="tenants")
        network.add_box("sw")
        network.attach_host("sw", "t1", "tenant1")
        network.attach_host("sw", "t2", "tenant2")
        network.add_forwarding_rule(
            "sw", Match.prefix("dst_ip", parse_ipv4("10.1.0.0"), 16), "t1", 16
        )
        network.add_forwarding_rule(
            "sw", Match.prefix("dst_ip", parse_ipv4("10.2.0.0"), 16), "t2", 16
        )
        # Isolation policy: tenant2's port rejects tenant1-destined noise
        # (defense in depth; forwarding already separates them).
        classifier = APClassifier.build(network)
        # Every atom delivered to t1's host must not also reach t2's.
        for atom_id in classifier.universe.atom_ids():
            behavior = classifier.behavior_of_atom(atom_id, "sw")
            hosts = behavior.delivered_hosts()
            assert hosts != {"tenant1", "tenant2"}


class TestThroughputSanity:
    def test_classifier_beats_pscan_by_an_order(self, internet2_classifier):
        """Fig. 12's core claim at test scale: >= 5x over PScan."""
        from repro.analysis.stats import measure_throughput
        from repro.baselines import PScanIdentifier

        rng = random.Random(2)
        trace = uniform_over_atoms(internet2_classifier.universe, 300, rng)
        fast = measure_throughput(
            internet2_classifier.tree.classify, trace.headers, repeat=3
        )
        pscan = PScanIdentifier(internet2_classifier.dataplane)
        slow = measure_throughput(pscan.verdicts, trace.headers, repeat=3)
        assert fast.qps > slow.qps * 5
