"""IPv6 support: address parsing and the full pipeline at 128-bit width."""

from __future__ import annotations

import random

import pytest

from repro.core.classifier import APClassifier
from repro.headerspace.fields import (
    dst_ip6_layout,
    five_tuple6_layout,
    format_ipv6,
    parse_ipv6,
)
from repro.headerspace.header import Packet
from repro.network.builder import Network
from repro.network.rules import Match


class TestParseIpv6:
    @pytest.mark.parametrize(
        ("text", "value"),
        [
            ("::", 0),
            ("::1", 1),
            ("2001:db8::", 0x20010DB8 << 96),
            (
                "2001:db8:0:1:2:3:4:5",
                (0x2001 << 112) | (0x0DB8 << 96) | (0x1 << 64)
                | (0x2 << 48) | (0x3 << 32) | (0x4 << 16) | 0x5,
            ),
            ("fe80::1:2", (0xFE80 << 112) | (1 << 16) | 2),
        ],
    )
    def test_parse_known_values(self, text, value):
        assert parse_ipv6(text) == value

    @pytest.mark.parametrize(
        "bad",
        [
            "1:2:3",                     # too few groups, no ::
            "1:2:3:4:5:6:7:8:9",         # too many groups
            "1::2::3",                   # two compressions
            "12345::",                   # oversized group
            "1:2:3:4:5:6:7:8::",         # :: with nothing to fill
            "g::1",                      # bad hex
        ],
    )
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_ipv6(bad)

    def test_format_round_trip(self):
        for text in ("::", "::1", "2001:db8::1", "fe80::a:b:c", "1:2:3:4:5:6:7:8"):
            assert parse_ipv6(format_ipv6(parse_ipv6(text))) == parse_ipv6(text)

    def test_format_compresses_longest_run(self):
        assert format_ipv6(parse_ipv6("2001:0:0:1:0:0:0:1")) == "2001:0:0:1::1"

    def test_format_range_checked(self):
        with pytest.raises(ValueError):
            format_ipv6(1 << 128)

    def test_random_round_trips(self):
        rng = random.Random(0)
        for _ in range(100):
            value = rng.getrandbits(128)
            assert parse_ipv6(format_ipv6(value)) == value


class TestLayouts:
    def test_widths(self):
        assert dst_ip6_layout().total_width == 128
        assert five_tuple6_layout().total_width == 296

    def test_packet_of_parses_ip6(self):
        packet = Packet.of(dst_ip6_layout(), dst_ip6="2001:db8::7")
        assert packet.field("dst_ip6") == parse_ipv6("2001:db8::7")
        assert "2001:db8::7" in repr(packet)


class TestPipelineAt128Bits:
    """The whole stack -- compile, atoms, AP Tree, stage 2 -- on IPv6."""

    @pytest.fixture(scope="class")
    def v6_classifier(self):
        network = Network(dst_ip6_layout(), name="v6")
        network.add_box("r1")
        network.add_box("r2")
        network.link("r1", "to_r2", "r2", "from_r1")
        network.attach_host("r1", "cust", "local")
        network.attach_host("r2", "cust", "remote")
        network.add_forwarding_rule(
            "r1", Match.prefix("dst_ip6", parse_ipv6("2001:db8:1::"), 48), "cust", 48
        )
        network.add_forwarding_rule(
            "r1", Match.prefix("dst_ip6", parse_ipv6("2001:db8::"), 32), "to_r2", 32
        )
        network.add_forwarding_rule(
            "r2", Match.prefix("dst_ip6", parse_ipv6("2001:db8::"), 32), "cust", 32
        )
        return APClassifier.build(network)

    def test_lpm_at_128_bits(self, v6_classifier):
        layout = v6_classifier.dataplane.layout
        local = Packet.of(layout, dst_ip6="2001:db8:1::42")
        remote = Packet.of(layout, dst_ip6="2001:db8:2::42")
        assert v6_classifier.query(local, "r1").delivered_hosts() == {"local"}
        assert v6_classifier.query(remote, "r1").delivered_hosts() == {"remote"}

    def test_atoms_partition_v6_space(self, v6_classifier):
        assert v6_classifier.universe.verify_partition()
        assert v6_classifier.universe.atom_count == 3  # local, remote, drop

    def test_tree_agrees_with_scan(self, v6_classifier):
        rng = random.Random(1)
        for _ in range(30):
            header = rng.getrandbits(128)
            assert v6_classifier.tree.classify(header) == (
                v6_classifier.universe.classify(header)
            )

    def test_updates_work_at_128_bits(self, v6_classifier):
        from repro.network.rules import ForwardingRule

        rule = ForwardingRule(
            Match.prefix("dst_ip6", parse_ipv6("2001:db8:2::"), 48),
            ("cust",),
            priority=48,
        )
        results = v6_classifier.insert_rule("r1", rule)
        try:
            layout = v6_classifier.dataplane.layout
            rerouted = Packet.of(layout, dst_ip6="2001:db8:2::1")
            assert v6_classifier.query(rerouted, "r1").delivered_hosts() == {
                "local"
            }
        finally:
            v6_classifier.remove_rule("r1", rule)
        assert results
