"""Kernel equivalence and plumbing: every engine, one answer.

The hot-path overhaul (word packing, scratch reuse, the optional C
kernel) must be invisible in the answers: for any universe and any
header batch, ``native``, ``numpy``, and ``stdlib`` classification --
through lists, arrays, or engines restored from a serialized artifact --
agree with the interpreted tree walk and the atomic universe's linear
scan.  The property test drives that across random cube universes; the
unit tests pin the packing layout, scratch behavior, and engine
resolution semantics the property test cannot distinguish.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.artifact import artifact_bytes, load_serving_buffer
from repro.bdd import BDDManager, Function
from repro.core import kernel
from repro.core.atomic import AtomicUniverse
from repro.core.compiled import (
    NATIVE_BACKEND,
    NUMPY_BACKEND,
    STDLIB_BACKEND,
    CompiledAPTree,
    available_backends,
)
from repro.core.classifier import APClassifier
from repro.core.construction import build_tree
from repro.datasets import toy_network
from repro.network.dataplane import LabeledPredicate

np = pytest.importorskip("numpy")

NUM_VARS = 7

cube = st.dictionaries(
    st.integers(min_value=0, max_value=NUM_VARS - 1),
    st.booleans(),
    min_size=1,
    max_size=4,
)

universe_spec = st.lists(cube, min_size=1, max_size=6)

headers = st.lists(
    st.integers(min_value=0, max_value=2**NUM_VARS - 1),
    min_size=0,
    max_size=64,
)


def build_universe_tree(spec):
    manager = BDDManager(NUM_VARS)
    predicates = [
        LabeledPredicate(
            pid=pid,
            kind="forward",
            box="sim",
            port="sim",
            fn=Function.cube(manager, literals),
        )
        for pid, literals in enumerate(spec)
    ]
    universe = AtomicUniverse.compute(manager, predicates)
    return universe, build_tree(universe, strategy="oapt").tree


@given(universe_spec, headers)
@settings(max_examples=100, deadline=None)
def test_every_engine_matches_interpreted(spec, batch):
    """native = numpy = stdlib = interpreted = linear scan, all paths."""
    universe, tree = build_universe_tree(spec)

    expected = [tree.classify(header) for header in batch]
    assert expected == [universe.classify(header) for header in batch]

    for backend in available_backends():
        compiled = CompiledAPTree.compile(tree, backend=backend)
        # List in, list out.
        assert compiled.classify_batch(batch) == expected, backend
        if not kernel.numpy_available():
            continue  # REPRO_DISABLE_NUMPY leg: no array paths
        array_batch = np.asarray(batch, dtype=np.uint64)
        # Array in: same answers through the ndarray dispatch.
        assert compiled.classify_batch(array_batch) == expected, backend
        if backend != STDLIB_BACKEND:
            # Array in, array out, plus a caller-owned output buffer.
            got = compiled.classify_batch_array(array_batch)
            assert got.tolist() == expected, backend
            out = np.empty(len(batch), dtype=np.int64)
            compiled.classify_batch_array(array_batch, out=out)
            assert out.tolist() == expected, backend


@given(universe_spec, headers)
@settings(max_examples=25, deadline=None)
def test_serving_only_restored_engines_agree(spec, batch):
    """Engines rebuilt from serialized arrays answer identically too."""
    universe, tree = build_universe_tree(spec)
    expected = [tree.classify(header) for header in batch]
    reference = CompiledAPTree.compile(tree, backend=STDLIB_BACKEND)
    for backend in available_backends():
        restored = CompiledAPTree.from_arrays(
            reference.to_arrays(), backend=backend
        )
        assert restored.classify_batch(batch) == expected, backend


@pytest.mark.parametrize("backend", available_backends())
def test_artifact_restored_engines_agree(backend):
    """The mmap-shaped artifact path serves identical answers per engine."""
    import random

    original = APClassifier.build(toy_network())
    blob = artifact_bytes(original)
    engine = load_serving_buffer(blob, backend=backend)
    rng = random.Random(11)
    width = original.dataplane.layout.total_width
    batch = [rng.getrandbits(width) for _ in range(256)]
    expected = [original.tree.classify(header) for header in batch]
    assert list(engine.classify_batch(batch)) == expected


class TestWideHeaders:
    """num_vars > 64: the multi-word (width 2) packing and descents."""

    WIDE_VARS = 70

    def _tree(self):
        manager = BDDManager(self.WIDE_VARS)
        # Predicates probing both words: low bits, high bits, straddling.
        specs = [
            {0: True, 1: False},
            {64: True, 69: False},
            {60: True, 66: True},
            {5: False, 68: True, 33: True},
        ]
        predicates = [
            LabeledPredicate(
                pid=pid, kind="forward", box="sim", port="sim",
                fn=Function.cube(manager, literals),
            )
            for pid, literals in enumerate(specs)
        ]
        universe = AtomicUniverse.compute(manager, predicates)
        return universe, build_tree(universe, strategy="oapt").tree

    def test_width_two_engines_agree(self):
        import random

        universe, tree = self._tree()
        rng = random.Random(3)
        batch = [rng.getrandbits(self.WIDE_VARS) for _ in range(200)]
        expected = [tree.classify(header) for header in batch]
        assert kernel.words_per_header(self.WIDE_VARS) == 2
        for backend in available_backends():
            compiled = CompiledAPTree.compile(tree, backend=backend)
            assert compiled.classify_batch(batch) == expected, backend

    @pytest.mark.skipif(
        not kernel.numpy_available(),
        reason="packing is numpy-backed (REPRO_DISABLE_NUMPY set)",
    )
    def test_wide_packing_layout(self):
        # Little-endian words: word 0 holds packed bits 0..63.
        packed = kernel.pack_headers([1 << 64 | 3], self.WIDE_VARS)
        assert packed.shape == (1, 2)
        assert packed[0, 0] == 3 and packed[0, 1] == 1


@pytest.mark.skipif(
    not kernel.numpy_available(),
    reason="packing is numpy-backed (REPRO_DISABLE_NUMPY set)",
)
class TestPackHeaders:
    def test_uint64_array_is_zero_copy(self):
        arr = np.arange(16, dtype=np.uint64)
        packed = kernel.pack_headers(arr, 32)
        assert packed is arr or packed.base is arr

    def test_column_vector_flattens(self):
        arr = np.arange(8, dtype=np.uint64).reshape(-1, 1)
        packed = kernel.pack_headers(arr, 32)
        assert packed.shape == (8,)

    def test_non_uint64_coerces_for_narrow_layouts(self):
        packed = kernel.pack_headers(np.arange(4, dtype=np.int64), 32)
        assert packed.dtype == np.uint64
        assert packed.tolist() == [0, 1, 2, 3]

    def test_list_packs_via_scratch_buffer(self):
        scratch = kernel.KernelScratch()
        packed = kernel.pack_headers([7, 9], 32, scratch)
        assert packed.tolist() == [7, 9]
        # Same backing buffer on the next batch: steady state allocates
        # nothing.
        repacked = kernel.pack_headers([1, 2], 32, scratch)
        assert repacked.base is packed.base

    def test_wrong_shape_is_loud(self):
        with pytest.raises(ValueError, match="shape"):
            kernel.pack_headers(np.zeros((4, 2), dtype=np.uint64), 32)


class TestKernelScratch:
    @pytest.mark.skipif(
        not kernel.numpy_available(),
        reason="scratch buffers are numpy-backed (REPRO_DISABLE_NUMPY set)",
    )
    def test_buffers_grow_and_persist(self):
        scratch = kernel.KernelScratch()
        first = scratch.words(10)
        again = scratch.words(10)
        assert first.base is again.base
        bigger = scratch.words(5000)
        assert bigger.shape == (5000,)

    def test_lease_is_exclusive_and_nonblocking(self):
        scratch = kernel.KernelScratch()
        assert scratch.acquire() is True
        # A contended caller must not block -- it allocates fresh.
        assert scratch.acquire() is False
        scratch.release()
        assert scratch.acquire() is True
        scratch.release()


class TestResolution:
    def test_explicit_unknown_backend_is_loud(self):
        with pytest.raises(ValueError, match="unknown backend"):
            kernel.resolve_backend("fortran")

    def test_explicit_native_demand_fails_without_extension(self, monkeypatch):
        from repro import _native

        monkeypatch.setattr(_native, "_KERNEL", None)
        monkeypatch.setattr(_native, "_TRIED", True)
        with pytest.raises(ValueError, match="native backend requested"):
            kernel.resolve_backend(NATIVE_BACKEND)

    def test_env_preference_degrades_gracefully(self, monkeypatch):
        from repro import _native, config

        monkeypatch.setattr(_native, "_KERNEL", None)
        monkeypatch.setattr(_native, "_TRIED", True)
        monkeypatch.setenv(config.ENV_ENGINE, "native")
        # The preference cannot be met: the ladder degrades to the next
        # rung this process can actually run, no error.
        expected = (
            NUMPY_BACKEND if kernel.numpy_available() else STDLIB_BACKEND
        )
        assert kernel.resolve_backend(None) == expected

    def test_auto_prefers_best_available(self):
        assert kernel.default_backend() == available_backends()[0]


@pytest.mark.skipif(
    not kernel.native_available(), reason="native kernel not built"
)
class TestNativeValidation:
    """The C kernel refuses malformed programs instead of walking them."""

    def _program(self):
        universe, tree = build_universe_tree([{0: True}, {1: False}])
        return CompiledAPTree.compile(tree, backend=NATIVE_BACKEND)

    def test_backward_edge_is_loud(self):
        compiled = self._program()
        child = compiled._program.f_child.copy()
        # Point an internal node's low edge back at itself: a cycle the
        # unchecked descent would spin on forever.
        internal = compiled._num_sinks
        child[2 * internal] = internal
        bad = kernel.Program(
            width=compiled._program.width,
            f_word=compiled._program.f_word,
            f_shift=compiled._program.f_shift,
            f_child=child,
            f_atom=compiled._program.f_atom,
            num_sinks=compiled._program.num_sinks,
            f_root=compiled._program.f_root,
        )
        words = np.zeros(4, dtype=np.uint64)
        out = np.empty(4, dtype=np.int64)
        with pytest.raises(ValueError, match="forward"):
            kernel.descend_native(bad, words, out)

    def test_short_words_buffer_is_loud(self):
        compiled = self._program()
        words = np.zeros(4, dtype=np.uint64)
        out = np.empty(8, dtype=np.int64)  # n = 8 > packed headers
        with pytest.raises(ValueError, match="words buffer"):
            kernel.descend_native(compiled._program, words, out)
