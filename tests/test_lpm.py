"""Tests for the LPM trie and its ForwardingTable fast path."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.headerspace.fields import HeaderLayout, dst_ip_layout, parse_ipv4
from repro.headerspace.header import Packet
from repro.network.lpm import PrefixTrie
from repro.network.rules import ForwardingRule, Match
from repro.network.tables import ForwardingTable

SMALL = HeaderLayout([("dst", 6)])


class TestPrefixTrie:
    def test_lpm_semantics(self):
        trie = PrefixTrie(8)
        trie.insert(0b1000_0000, 1, "half")
        trie.insert(0b1010_0000, 3, "eighth")
        assert trie.lookup(0b1010_1111) == "eighth"
        assert trie.lookup(0b1000_0000) == "half"
        assert trie.lookup(0b0000_0001) is None

    def test_zero_length_prefix_is_default(self):
        trie = PrefixTrie(8)
        trie.insert(0, 0, "default")
        trie.insert(0b1100_0000, 2, "specific")
        assert trie.lookup(0b0011_0000) == "default"
        assert trie.lookup(0b1101_0000) == "specific"

    def test_insert_replaces(self):
        trie = PrefixTrie(4)
        trie.insert(0b1000, 1, "old")
        trie.insert(0b1000, 1, "new")
        assert trie.lookup(0b1000) == "new"
        assert len(trie) == 1

    def test_remove(self):
        trie = PrefixTrie(4)
        trie.insert(0b1000, 1, "x")
        trie.remove(0b1000, 1)
        assert trie.lookup(0b1000) is None
        with pytest.raises(KeyError):
            trie.remove(0b1000, 1)

    def test_get_is_exact(self):
        trie = PrefixTrie(4)
        trie.insert(0b1000, 1, "x")
        assert trie.get(0b1000, 1) == "x"
        assert trie.get(0b1000, 2) is None

    def test_items(self):
        trie = PrefixTrie(4)
        trie.insert(0b1000, 1, "a")
        trie.insert(0b0100, 2, "b")
        assert sorted(trie.items()) == [(0b0100, 2, "b"), (0b1000, 1, "a")]

    def test_validation(self):
        with pytest.raises(ValueError):
            PrefixTrie(0)
        trie = PrefixTrie(4)
        with pytest.raises(ValueError):
            trie.insert(0, 5, "x")
        with pytest.raises(ValueError):
            trie.insert(16, 0, "x")

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=63),
                st.integers(min_value=0, max_value=6),
            ),
            max_size=12,
        )
    )
    @settings(max_examples=150)
    def test_lpm_matches_reference(self, prefixes):
        """Trie lookup == brute-force longest matching prefix."""
        trie = PrefixTrie(6)
        canonical: dict[tuple[int, int], str] = {}
        for value, prefix_len in prefixes:
            keep = 6 - prefix_len
            aligned = (value >> keep) << keep if keep else value
            payload = f"{aligned}/{prefix_len}"
            trie.insert(aligned, prefix_len, payload)
            canonical[(aligned, prefix_len)] = payload
        for key in range(64):
            best = None
            best_len = -1
            for (value, prefix_len), payload in canonical.items():
                keep = 6 - prefix_len
                if (key >> keep if keep else key) == (value >> keep if keep else value):
                    if prefix_len > best_len:
                        best, best_len = payload, prefix_len
            assert trie.lookup(key) == best


class TestForwardingTableFastPath:
    def lpm_table(self) -> ForwardingTable:
        return ForwardingTable(
            [
                ForwardingRule(
                    Match.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8), ("coarse",), 8
                ),
                ForwardingRule(
                    Match.prefix("dst_ip", parse_ipv4("10.1.0.0"), 16), ("fine",), 16
                ),
                ForwardingRule(Match.any(), ("default",), 0),
            ]
        )

    def test_trie_activates_for_lpm_tables(self):
        table = self.lpm_table()
        packet = Packet.of(dst_ip_layout(), dst_ip="10.1.2.3")
        assert table.lookup(packet) == ("fine",)
        assert table._trie is not None  # fast path engaged

    def test_fallback_for_multifield_rules(self):
        from repro.headerspace.fields import five_tuple_layout

        layout = five_tuple_layout()
        table = ForwardingTable(
            [
                ForwardingRule(
                    Match.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8).with_prefix(
                        "proto", 6, 8
                    ),
                    ("p",),
                    8,
                )
            ]
        )
        packet = Packet.of(layout, dst_ip="10.1.1.1", proto=6)
        assert table.lookup(packet) == ("p",)
        assert table._trie is None  # general scan

    def test_fallback_when_priority_disagrees(self):
        table = ForwardingTable(
            [
                ForwardingRule(
                    Match.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8), ("p",), 99
                )
            ]
        )
        packet = Packet.of(dst_ip_layout(), dst_ip="10.1.1.1")
        assert table.lookup(packet) == ("p",)
        assert table._trie is None

    def test_mutation_invalidates_trie(self):
        table = self.lpm_table()
        packet = Packet.of(dst_ip_layout(), dst_ip="10.1.2.3")
        assert table.lookup(packet) == ("fine",)
        shadow = ForwardingRule(
            Match.prefix("dst_ip", parse_ipv4("10.1.2.0"), 24), ("finest",), 24
        )
        table.add(shadow)
        assert table.lookup(packet) == ("finest",)
        table.remove(shadow)
        assert table.lookup(packet) == ("fine",)

    def test_duplicate_prefix_earlier_wins(self):
        table = ForwardingTable()
        first = ForwardingRule(
            Match.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8), ("first",), 8
        )
        second = ForwardingRule(
            Match.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8), ("second",), 8
        )
        table.add(first)
        table.add(second)
        packet = Packet.of(dst_ip_layout(), dst_ip="10.5.5.5")
        assert table.lookup(packet) == ("first",)

    def test_drop_rule_in_trie(self):
        table = ForwardingTable(
            [
                ForwardingRule(
                    Match.prefix("dst_ip", parse_ipv4("10.1.0.0"), 16), (), 16
                ),
                ForwardingRule(
                    Match.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8), ("out",), 8
                ),
            ]
        )
        blocked = Packet.of(dst_ip_layout(), dst_ip="10.1.0.1")
        allowed = Packet.of(dst_ip_layout(), dst_ip="10.2.0.1")
        assert table.lookup(blocked) == ()
        assert table.lookup(allowed) == ("out",)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=63),
                st.integers(min_value=0, max_value=6),
                st.sampled_from(["p0", "p1", ""]),
            ),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=100)
    def test_fast_path_equals_linear_scan(self, specs):
        """Property: with the trie force-disabled, results are identical."""
        rules = [
            ForwardingRule(
                Match.prefix("dst", value, prefix_len),
                (port,) if port else (),
                prefix_len,
            )
            for value, prefix_len, port in specs
        ]
        fast = ForwardingTable(rules)
        slow = ForwardingTable(rules)
        for key in range(64):
            packet = Packet(SMALL, key)
            fast_result = fast.lookup(packet)
            # Force the linear path on the control table.
            slow._trie_version = slow._version
            slow._trie = None
            slow_result = next(
                (r.out_ports for r in slow._rules if r.match.matches(packet)), ()
            )
            assert fast_result == slow_result
