"""Tests for the MDD classifier baseline ([10]-style)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.mdd import MddClassifier
from repro.core.classifier import APClassifier
from repro.datasets import internet2_like, random_network, toy_network


@pytest.fixture(scope="module")
def toy_pair():
    classifier = APClassifier.build(toy_network())
    return classifier, MddClassifier(classifier.universe)


class TestCorrectness:
    def test_agrees_with_linear_scan_exhaustively_small(self):
        from repro.bdd import BDDManager, Function
        from repro.core.atomic import AtomicUniverse
        from repro.network.dataplane import LabeledPredicate

        mgr = BDDManager(6)
        rng = random.Random(3)
        labeled = []
        for pid in range(4):
            fn = Function.false(mgr)
            for point in range(64):
                if rng.random() < 0.4:
                    fn = fn | Function.cube(
                        mgr, {i: bool((point >> (5 - i)) & 1) for i in range(6)}
                    )
            labeled.append(LabeledPredicate(pid, "forward", "b", f"p{pid}", fn))
        universe = AtomicUniverse.compute(mgr, labeled)
        mdd = MddClassifier(universe, chunk_bits=3)
        for header in range(64):
            assert mdd.classify(header) == universe.classify(header)

    def test_agrees_on_toy(self, toy_pair):
        classifier, mdd = toy_pair
        rng = random.Random(1)
        for _ in range(200):
            header = rng.getrandbits(32)
            assert mdd.classify(header) == classifier.universe.classify(header)

    def test_agrees_on_internet2(self, internet2_classifier):
        mdd = MddClassifier(internet2_classifier.universe)
        rng = random.Random(2)
        for _ in range(200):
            header = rng.getrandbits(32)
            assert mdd.classify(header) == internet2_classifier.universe.classify(
                header
            )

    @given(seed=st.integers(min_value=0, max_value=25))
    @settings(max_examples=10, deadline=None)
    def test_agrees_on_random_networks(self, seed):
        network = random_network(boxes=4, prefixes=5, seed=seed)
        classifier = APClassifier.build(network)
        mdd = MddClassifier(classifier.universe)
        rng = random.Random(seed)
        for _ in range(50):
            header = rng.getrandbits(32)
            assert mdd.classify(header) == classifier.universe.classify(header)


class TestStructure:
    def test_chunk_bits_validated(self, toy_pair):
        classifier, _ = toy_pair
        with pytest.raises(ValueError):
            MddClassifier(classifier.universe, chunk_bits=0)

    def test_node_count_reported(self, toy_pair):
        _, mdd = toy_pair
        assert mdd.node_count >= 1
        assert "nodes" in repr(mdd)

    def test_non_byte_chunks(self, toy_pair):
        classifier, _ = toy_pair
        mdd4 = MddClassifier(classifier.universe, chunk_bits=4)
        rng = random.Random(4)
        for _ in range(100):
            header = rng.getrandbits(32)
            assert mdd4.classify(header) == classifier.universe.classify(header)

    def test_lookup_is_constant_small_steps(self, toy_pair):
        """An MDD lookup touches at most ``levels`` nodes -- the speed
        advantage the paper concedes to [10]."""
        _, mdd = toy_pair
        assert mdd.levels == 4  # 32-bit header / 8-bit chunks


class TestTradeoff:
    def test_mdd_lookup_faster_but_build_slower(self, internet2_classifier):
        """The paper's positioning of [10]: faster lookups, costlier and
        static structure."""
        import time

        universe = internet2_classifier.universe
        started = time.perf_counter()
        mdd = MddClassifier(universe)
        mdd_build = time.perf_counter() - started

        from repro.core.construction import build_oapt

        started = time.perf_counter()
        tree = build_oapt(universe)
        tree_build = time.perf_counter() - started

        rng = random.Random(5)
        headers = [rng.getrandbits(32) for _ in range(4000)]
        started = time.perf_counter()
        for header in headers:
            mdd.classify(header)
        mdd_query = time.perf_counter() - started
        started = time.perf_counter()
        for header in headers:
            tree.classify(header)
        tree_query = time.perf_counter() - started

        assert mdd_query < tree_query  # lookups win...
        assert mdd_build > tree_build * 0.5  # ...but construction doesn't
