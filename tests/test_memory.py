"""Tests for the memory accounting module."""

from __future__ import annotations

from repro.analysis.memory import MemoryReport, memory_report


class TestMemoryReport:
    def test_components_positive(self, internet2_classifier):
        report = memory_report(internet2_classifier)
        assert report.predicate_bdd_nodes > 0
        assert report.atom_bdd_nodes > 0
        assert report.tree_nodes == internet2_classifier.tree.node_count()
        assert report.total_bytes > 0

    def test_sharing_bounded(self, internet2_classifier):
        report = memory_report(internet2_classifier)
        assert report.shared_bdd_nodes <= min(
            report.predicate_bdd_nodes, report.atom_bdd_nodes
        )

    def test_r_entries_match_universe(self, internet2_classifier):
        report = memory_report(internet2_classifier)
        expected = sum(
            len(internet2_classifier.universe.r(pid))
            for pid in internet2_classifier.universe.predicate_ids()
        )
        assert report.r_entries == expected

    def test_rows_render(self, internet2_classifier):
        rows = memory_report(internet2_classifier).rows()
        assert any("estimated total" in label for label, _ in rows)
        assert all(isinstance(value, str) for _, value in rows)

    def test_total_formula(self):
        report = MemoryReport(
            predicate_bdd_nodes=100,
            atom_bdd_nodes=50,
            shared_bdd_nodes=20,
            tree_nodes=10,
            r_entries=30,
            topology_entries=5,
        )
        expected = 130 * 20 + 10 * 40 + 30 * 8 + 5 * 48
        assert report.total_bytes == expected

    def test_memory_follows_node_count_not_rule_count(self):
        """The paper's §VII-B observation: more rules does not mean more
        memory when the rules are similar."""
        from repro.core.classifier import APClassifier
        from repro.datasets import internet2_like

        small = APClassifier.build(internet2_like(prefixes_per_router=1))
        # Same plane but each prefix duplicated as many finer rules that
        # reduce to the same behavior: rules grow, predicates don't.
        bloated_net = internet2_like(prefixes_per_router=1)
        from repro.network.rules import ForwardingRule, Match

        for name, box in bloated_net.boxes.items():
            extra = []
            for rule in list(box.table):
                constraint = rule.match.constraint_for("dst_ip")
                if constraint is None or constraint.prefix_len != 16:
                    continue
                # Split the /16 into two /17s to the same port.
                for half in (0, 1):
                    extra.append(
                        ForwardingRule(
                            Match.prefix(
                                "dst_ip",
                                constraint.value | (half << 15),
                                17,
                            ),
                            rule.out_ports,
                            priority=17,
                        )
                    )
            for rule in extra:
                box.table.add(rule)
        bloated = APClassifier.build(bloated_net)
        assert bloated_net.rule_count() > small.dataplane.network.rule_count()
        small_report = memory_report(small)
        bloated_report = memory_report(bloated)
        # Identical behaviors -> same atoms, near-identical BDD footprint.
        assert bloated.universe.atom_count == small.universe.atom_count
        assert bloated_report.atom_bdd_nodes == small_report.atom_bdd_nodes
