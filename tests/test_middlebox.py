"""Middlebox header-change tests (Section V-E)."""

from __future__ import annotations

import random

import pytest

from repro.core.classifier import APClassifier
from repro.core.middlebox import (
    DETERMINISTIC,
    PAYLOAD_DEPENDENT,
    PROBABILISTIC,
    FlowEntry,
    HeaderRewrite,
    Middlebox,
    MiddleboxAwareComputer,
    MiddleboxTable,
    RewriteBranch,
)
from repro.datasets import make_middlebox, toy_network
from repro.headerspace.fields import parse_ipv4
from repro.headerspace.header import Packet


class TestHeaderRewrite:
    def test_apply_forces_masked_bits(self):
        rewrite = HeaderRewrite(mask=0xFF00, value=0xAB00)
        assert rewrite.apply(0x1234) == 0xAB34

    def test_identity(self):
        rewrite = HeaderRewrite(mask=0, value=0)
        assert rewrite.is_identity
        assert rewrite.apply(0x77) == 0x77

    def test_value_outside_mask_rejected(self):
        with pytest.raises(ValueError):
            HeaderRewrite(mask=0x0F, value=0x10)


class TestFlowEntryValidation:
    def test_deterministic_requires_new_atom(self):
        with pytest.raises(ValueError):
            FlowEntry(
                match_atoms=frozenset({1}),
                kind=DETERMINISTIC,
                branches=(RewriteBranch(HeaderRewrite(0, 0)),),
            )

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            FlowEntry(
                match_atoms=frozenset({1}),
                kind=PROBABILISTIC,
                branches=(
                    RewriteBranch(HeaderRewrite(0, 0), probability=0.5),
                    RewriteBranch(HeaderRewrite(0, 0), probability=0.4),
                ),
            )

    def test_single_branch_enforced_for_deterministic(self):
        with pytest.raises(ValueError):
            FlowEntry(
                match_atoms=frozenset({1}),
                kind=DETERMINISTIC,
                branches=(
                    RewriteBranch(HeaderRewrite(0, 0), 0.5, 1),
                    RewriteBranch(HeaderRewrite(0, 0), 0.5, 1),
                ),
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FlowEntry(
                match_atoms=frozenset({1}),
                kind="mystery",
                branches=(RewriteBranch(HeaderRewrite(0, 0)),),
            )

    def test_empty_branches_rejected(self):
        with pytest.raises(ValueError):
            FlowEntry(match_atoms=frozenset({1}), kind=PAYLOAD_DEPENDENT, branches=())


class TestMiddleboxTable:
    def test_first_match(self):
        entry_a = FlowEntry(
            frozenset({1, 2}),
            PAYLOAD_DEPENDENT,
            (RewriteBranch(HeaderRewrite(0, 0)),),
        )
        entry_b = FlowEntry(
            frozenset({2, 3}),
            PAYLOAD_DEPENDENT,
            (RewriteBranch(HeaderRewrite(0, 0)),),
        )
        table = MiddleboxTable([entry_a, entry_b])
        assert table.entry_for(2) is entry_a
        assert table.entry_for(3) is entry_b
        assert table.entry_for(9) is None
        assert len(table) == 2


def toy_with_nat() -> tuple[APClassifier, MiddleboxAwareComputer]:
    """A NAT at b2 translating 10.2.0.0/17 destinations to 10.3.0.0/16.

    Without the NAT both land at h2 (both inside p3); with the NAT the
    classifier must continue the walk with the rewritten header's atom.
    """
    network = toy_network()
    classifier = APClassifier.build(network)
    original = Packet.of(network.layout, dst_ip="10.2.0.9")
    rewritten = Packet.of(network.layout, dst_ip="10.3.0.9")
    source_atom = classifier.classify(original)
    target_atom = classifier.classify(rewritten)
    entry = FlowEntry(
        match_atoms=frozenset({source_atom}),
        kind=DETERMINISTIC,
        branches=(
            RewriteBranch(
                HeaderRewrite(mask=(1 << 32) - 1, value=rewritten.value),
                probability=1.0,
                new_atom=target_atom,
            ),
        ),
    )
    middlebox = Middlebox("NAT", MiddleboxTable([entry]))
    return classifier, MiddleboxAwareComputer(classifier, {"b2": middlebox})


class TestType1Deterministic:
    def test_rewritten_packet_follows_new_atom(self):
        classifier, computer = toy_with_nat()
        packet = Packet.of(classifier.dataplane.layout, dst_ip="10.2.0.9")
        outcomes = computer.query(packet.value, "b1")
        assert len(outcomes) == 1
        outcome = outcomes[0]
        assert outcome.probability == pytest.approx(1.0)
        assert outcome.tree_searches == 0  # Type 1: atom was precomputed
        # 10.3.0.9 is still inside p3, so delivery to h2 persists; the
        # point is the walk used the *new* atom.
        assert outcome.behavior.delivered_hosts() == {"h2"}

    def test_unmatched_packets_pass_through(self):
        classifier, computer = toy_with_nat()
        packet = Packet.of(classifier.dataplane.layout, dst_ip="10.1.0.9")
        outcomes = computer.query(packet.value, "b1")
        assert len(outcomes) == 1
        assert outcomes[0].behavior.delivered_hosts() == {"h1"}


class TestType2Type3:
    def test_payload_dependent_triggers_research(self):
        network = toy_network()
        classifier = APClassifier.build(network)
        original = Packet.of(network.layout, dst_ip="10.2.0.9")
        rewritten = Packet.of(network.layout, dst_ip="10.2.200.9")  # leaves p3
        entry = FlowEntry(
            match_atoms=frozenset({classifier.classify(original)}),
            kind=PAYLOAD_DEPENDENT,
            branches=(
                RewriteBranch(
                    HeaderRewrite((1 << 32) - 1, rewritten.value), 1.0, None
                ),
            ),
        )
        computer = MiddleboxAwareComputer(
            classifier, {"b2": Middlebox("DPI", MiddleboxTable([entry]))}
        )
        outcomes = computer.query(original.value, "b1")
        assert len(outcomes) == 1
        assert outcomes[0].tree_searches == 1
        # 10.2.200.x is outside p3: b2 now drops the rewritten packet.
        assert outcomes[0].behavior.is_dropped_everywhere

    def test_probabilistic_yields_multiple_behaviors(self):
        network = toy_network()
        classifier = APClassifier.build(network)
        original = Packet.of(network.layout, dst_ip="10.2.0.9")
        stay = Packet.of(network.layout, dst_ip="10.2.0.10")
        leave = Packet.of(network.layout, dst_ip="10.2.200.9")
        entry = FlowEntry(
            match_atoms=frozenset({classifier.classify(original)}),
            kind=PROBABILISTIC,
            branches=(
                RewriteBranch(HeaderRewrite((1 << 32) - 1, stay.value), 0.5),
                RewriteBranch(HeaderRewrite((1 << 32) - 1, leave.value), 0.5),
            ),
        )
        computer = MiddleboxAwareComputer(
            classifier, {"b2": Middlebox("LB", MiddleboxTable([entry]))}
        )
        outcomes = computer.query(original.value, "b1")
        assert len(outcomes) == 2
        assert sum(o.probability for o in outcomes) == pytest.approx(1.0)
        delivered = [o for o in outcomes if o.behavior.delivered_hosts()]
        dropped = [o for o in outcomes if o.behavior.is_dropped_everywhere]
        assert len(delivered) == 1 and len(dropped) == 1


class TestGeneratedMiddleboxes:
    def test_generator_respects_deterministic_ratio(self, internet2_classifier):
        rng = random.Random(1)
        all_deterministic = make_middlebox(
            "MB", internet2_classifier.universe, rng, deterministic_ratio=1.0
        )
        assert all(e.kind == DETERMINISTIC for e in all_deterministic.table)
        none_deterministic = make_middlebox(
            "MB", internet2_classifier.universe, rng, deterministic_ratio=0.0
        )
        assert all(e.kind != DETERMINISTIC for e in none_deterministic.table)

    def test_entries_cover_all_atoms(self, internet2_classifier):
        rng = random.Random(2)
        middlebox = make_middlebox("MB", internet2_classifier.universe, rng)
        covered = frozenset().union(*(e.match_atoms for e in middlebox.table))
        assert covered == internet2_classifier.universe.atom_ids()

    def test_queries_complete_with_middlebox(self, internet2_classifier):
        rng = random.Random(3)
        middlebox = make_middlebox(
            "MB", internet2_classifier.universe, rng, deterministic_ratio=0.5
        )
        computer = MiddleboxAwareComputer(
            internet2_classifier, {"CHIC": middlebox}
        )
        from repro.datasets import uniform_over_atoms

        trace = uniform_over_atoms(internet2_classifier.universe, 15, rng)
        for header in trace.headers:
            outcomes = computer.query(header, "SEAT")
            assert outcomes
            assert sum(o.probability for o in outcomes) == pytest.approx(1.0)
