"""Corner cases: middleboxes meeting multicast, and FlowEntry.from_match."""

from __future__ import annotations

import pytest

from repro.core.classifier import APClassifier
from repro.core.middlebox import (
    DETERMINISTIC,
    PROBABILISTIC,
    FlowEntry,
    HeaderRewrite,
    Middlebox,
    MiddleboxAwareComputer,
    MiddleboxTable,
    RewriteBranch,
)
from repro.datasets import toy_network
from repro.headerspace.fields import dst_ip_layout, parse_ipv4
from repro.network.builder import Network
from repro.network.rules import Match

FULL = (1 << 32) - 1


def multicast_diamond() -> Network:
    """s multicasts to l and r; both forward to their own host."""
    network = Network(dst_ip_layout(), name="mb-mcast")
    for name in ("s", "l", "r"):
        network.add_box(name)
    network.link("s", "to_l", "l", "from_s")
    network.link("s", "to_r", "r", "from_s")
    network.attach_host("l", "cust", "hl")
    network.attach_host("r", "cust", "hr")
    group = Match.prefix("dst_ip", parse_ipv4("224.0.0.0"), 4)
    network.add_forwarding_rule("s", group, ("to_l", "to_r"), 4)
    network.add_forwarding_rule("l", group, "cust", 4)
    network.add_forwarding_rule("r", group, "cust", 4)
    return network


class TestMulticastWithProbabilisticMiddlebox:
    def test_probabilities_sum_to_one_across_product(self):
        """A probabilistic middlebox on one multicast branch: the cross
        product of outcomes must still form a probability distribution."""
        network = multicast_diamond()
        classifier = APClassifier.build(network)
        header = parse_ipv4("224.1.1.1")
        atom = classifier.classify(header)
        keep = RewriteBranch(HeaderRewrite(0, 0), probability=0.5)
        also_keep = RewriteBranch(HeaderRewrite(1, 1), probability=0.5)
        entry = FlowEntry(
            match_atoms=frozenset({atom}),
            kind=PROBABILISTIC,
            branches=(keep, also_keep),
        )
        computer = MiddleboxAwareComputer(
            classifier, {"l": Middlebox("LB", MiddleboxTable([entry]))}
        )
        outcomes = computer.query(header, "s")
        assert len(outcomes) == 2
        assert sum(o.probability for o in outcomes) == pytest.approx(1.0)
        # Both outcomes still deliver to both hosts (rewrites kept the
        # packet in the multicast group's atom).
        for outcome in outcomes:
            assert outcome.behavior.delivered_hosts() == {"hl", "hr"}

    def test_two_probabilistic_middleboxes_product(self):
        network = multicast_diamond()
        classifier = APClassifier.build(network)
        header = parse_ipv4("224.1.1.1")
        atom = classifier.classify(header)

        def two_way() -> FlowEntry:
            return FlowEntry(
                match_atoms=frozenset({atom}),
                kind=PROBABILISTIC,
                branches=(
                    RewriteBranch(HeaderRewrite(0, 0), probability=0.5),
                    RewriteBranch(HeaderRewrite(1, 1), probability=0.5),
                ),
            )

        computer = MiddleboxAwareComputer(
            classifier,
            {
                "l": Middlebox("LB1", MiddleboxTable([two_way()])),
                "r": Middlebox("LB2", MiddleboxTable([two_way()])),
            },
        )
        outcomes = computer.query(header, "s")
        # 2 branches at l x 2 at r = 4 outcomes of probability 0.25.
        assert len(outcomes) == 4
        assert sum(o.probability for o in outcomes) == pytest.approx(1.0)
        for outcome in outcomes:
            assert outcome.probability == pytest.approx(0.25)


class TestIdentityMiddlebox:
    def test_empty_table_equals_plain_behavior(self, internet2_classifier):
        """A middlebox whose table matches nothing must be transparent."""
        import random

        computer = MiddleboxAwareComputer(
            internet2_classifier,
            {"CHIC": Middlebox("noop", MiddleboxTable())},
        )
        rng = random.Random(7)
        boxes = sorted(internet2_classifier.dataplane.network.boxes)
        for _ in range(25):
            header = rng.getrandbits(32)
            ingress = rng.choice(boxes)
            (outcome,) = computer.query(header, ingress)
            plain = internet2_classifier.query(header, ingress)
            assert sorted(map(tuple, outcome.behavior.paths())) == sorted(
                map(tuple, plain.paths())
            )
            assert outcome.probability == 1.0
            assert outcome.tree_searches == 0

    def test_identity_rewrite_preserves_behavior(self, internet2_classifier):
        """A Type-1 entry rewriting nothing and mapping each atom to
        itself is also transparent."""
        import random

        universe = internet2_classifier.universe
        entries = [
            FlowEntry(
                match_atoms=frozenset({atom_id}),
                kind=DETERMINISTIC,
                branches=(
                    RewriteBranch(HeaderRewrite(0, 0), 1.0, new_atom=atom_id),
                ),
            )
            for atom_id in sorted(universe.atom_ids())
        ]
        computer = MiddleboxAwareComputer(
            internet2_classifier,
            {"KANS": Middlebox("identity", MiddleboxTable(entries))},
        )
        rng = random.Random(8)
        boxes = sorted(internet2_classifier.dataplane.network.boxes)
        for _ in range(20):
            header = rng.getrandbits(32)
            ingress = rng.choice(boxes)
            (outcome,) = computer.query(header, ingress)
            plain = internet2_classifier.query(header, ingress)
            assert sorted(map(tuple, outcome.behavior.paths())) == sorted(
                map(tuple, plain.paths())
            )


class TestFromMatch:
    def test_compiles_match_to_atoms(self):
        classifier = APClassifier.build(toy_network())
        match = Match.prefix("dst_ip", parse_ipv4("10.2.0.0"), 16)
        target = classifier.classify(parse_ipv4("10.3.0.9"))
        entry = FlowEntry.from_match(
            classifier,
            match,
            DETERMINISTIC,
            (
                RewriteBranch(
                    HeaderRewrite(FULL, parse_ipv4("10.3.0.9")), 1.0, target
                ),
            ),
        )
        assert entry.match_atoms == classifier.atoms_matching(match)

    def test_dead_match_rejected(self):
        classifier = APClassifier.build(toy_network())
        # A match selecting no packets cannot exist over a full partition,
        # so force it with an impossible width-0 trick: use a match whose
        # atoms set we empty by intersection -- simplest is a contradictory
        # constraint pair, which Match cannot express; instead check the
        # guard directly.
        with pytest.raises(ValueError):
            FlowEntry.from_match(
                _EmptyAtomsClassifier(), Match.any(), DETERMINISTIC, ()
            )


class _EmptyAtomsClassifier:
    @staticmethod
    def atoms_matching(match):
        return frozenset()
