"""Tests for the scoped NetPlumber (incremental HSA)."""

from __future__ import annotations

import random

import pytest

from repro.baselines import HsaQuerier, NetPlumber
from repro.core.classifier import APClassifier
from repro.datasets import fattree, internet2_like, rule_update_stream, toy_network
from repro.headerspace.fields import parse_ipv4
from repro.headerspace.wildcard import Wildcard, WildcardSet
from repro.network.rules import ForwardingRule, Match


def regions_agree(netplumber: NetPlumber, network, samples: int = 60, seed: int = 0):
    """NetPlumber's routed reachability == fresh HSA, on sampled packets."""
    querier = HsaQuerier(network)
    rng = random.Random(seed)
    width = network.layout.total_width
    for ingress in sorted(network.boxes):
        np_regions = netplumber.reach_region(WildcardSet.full(width), ingress)
        hsa_regions = querier.reach_region(WildcardSet.full(width), ingress)
        for _ in range(samples // max(len(network.boxes), 1) + 1):
            header = rng.getrandbits(width)
            for host in set(np_regions) | set(hsa_regions):
                np_hit = host in np_regions and np_regions[host].matches(header)
                hsa_hit = host in hsa_regions and hsa_regions[host].matches(header)
                assert np_hit == hsa_hit, (ingress, host, hex(header))


class TestStaticAgreement:
    def test_toy(self):
        network = toy_network()
        regions_agree(NetPlumber(network), network)

    def test_internet2_like(self):
        network = internet2_like(prefixes_per_router=1)
        regions_agree(NetPlumber(network), network, samples=40)

    def test_fattree(self):
        network = fattree(4)
        regions_agree(NetPlumber(network), network, samples=40)

    def test_acl_networks_rejected(self, stanford_net):
        with pytest.raises(NotImplementedError):
            NetPlumber(stanford_net)


class TestIncrementalUpdates:
    def test_insert_matches_rebuild(self):
        network = toy_network()
        netplumber = NetPlumber(network)
        rule = ForwardingRule(
            Match.prefix("dst_ip", parse_ipv4("10.9.0.0"), 16), ("to_b2",), 16
        )
        network.box("b1").table.add(rule)
        netplumber.insert_rule("b1", rule)
        regions_agree(netplumber, network, seed=1)

    def test_remove_matches_rebuild(self):
        network = toy_network()
        netplumber = NetPlumber(network)
        victim = next(iter(network.box("b2").table))
        network.box("b2").table.remove(victim)
        netplumber.remove_rule("b2", victim)
        regions_agree(netplumber, network, seed=2)

    def test_remove_unknown_raises(self):
        netplumber = NetPlumber(toy_network())
        with pytest.raises(KeyError):
            netplumber.remove_rule(
                "b1",
                ForwardingRule(
                    Match.prefix("dst_ip", parse_ipv4("99.0.0.0"), 8), ("x",), 8
                ),
            )

    def test_shadowing_insert_updates_domination(self):
        """A higher-priority insert steals region from an existing rule."""
        network = toy_network()
        netplumber = NetPlumber(network)
        # Shadow half of p2's traffic at b1 into a drop.
        shadow = ForwardingRule(
            Match.prefix("dst_ip", parse_ipv4("10.2.0.0"), 17), (), 17
        )
        network.box("b1").table.add(shadow)
        netplumber.insert_rule("b1", shadow)
        regions_agree(netplumber, network, seed=3)
        # p3 at b2 only covers 10.2.0.0/17, which the shadow just ate:
        # nothing from b1 reaches h2 any more.
        delivered = netplumber.reach_region(WildcardSet.full(32), "b1")
        assert "h2" not in delivered or not delivered["h2"].matches(
            parse_ipv4("10.2.0.1")
        )

    def test_churn_sequence_stays_exact(self):
        network = internet2_like(prefixes_per_router=1, te_fraction=0.0)
        netplumber = NetPlumber(network)
        rng = random.Random(4)
        for update in rule_update_stream(network, 12, rng):
            if update.kind == "insert":
                network.box(update.box).table.add(update.rule)
                netplumber.insert_rule(update.box, update.rule)
            else:
                network.box(update.box).table.remove(update.rule)
                netplumber.remove_rule(update.box, update.rule)
        regions_agree(netplumber, network, samples=30, seed=5)

    def test_incrementality_is_real(self):
        """An insert must touch far fewer pipes than a full rebuild."""
        network = internet2_like(prefixes_per_router=2)
        netplumber = NetPlumber(network)
        build_cost = netplumber.pipes_recomputed
        netplumber.pipes_recomputed = 0
        rule = ForwardingRule(
            Match.prefix("dst_ip", parse_ipv4("10.1.0.0"), 24), ("to_SALT",), 24
        )
        network.box("SEAT").table.add(rule)
        netplumber.insert_rule("SEAT", rule)
        assert netplumber.pipes_recomputed < build_cost / 2


class TestProbes:
    def test_exists_probe_violated_by_blackhole(self):
        network = toy_network()
        netplumber = NetPlumber(network)
        probe = netplumber.add_probe(
            "b1", "h2", Wildcard.from_prefix(32, 0, 32, parse_ipv4("10.2.0.0"), 17),
            mode="exists",
        )
        assert netplumber.check_probes() == []
        blackhole = ForwardingRule(
            Match.prefix("dst_ip", parse_ipv4("10.2.0.0"), 17), (), 18
        )
        network.box("b1").table.add(blackhole)
        violated = netplumber.insert_rule("b1", blackhole)
        assert probe in violated

    def test_none_probe_violated_by_leak(self):
        network = toy_network()
        netplumber = NetPlumber(network)
        probe = netplumber.add_probe(
            "b1", "h1", Wildcard.from_prefix(32, 0, 32, parse_ipv4("10.9.0.0"), 16),
            mode="none",
        )
        assert netplumber.check_probes() == []
        leak = ForwardingRule(
            Match.prefix("dst_ip", parse_ipv4("10.9.0.0"), 16), ("to_h1",), 16
        )
        network.box("b1").table.add(leak)
        violated = netplumber.insert_rule("b1", leak)
        assert probe in violated

    def test_probe_clears_after_rollback(self):
        network = toy_network()
        netplumber = NetPlumber(network)
        netplumber.add_probe(
            "b1", "h2", Wildcard.from_prefix(32, 0, 32, parse_ipv4("10.2.0.0"), 17),
            mode="exists",
        )
        blackhole = ForwardingRule(
            Match.prefix("dst_ip", parse_ipv4("10.2.0.0"), 17), (), 18
        )
        network.box("b1").table.add(blackhole)
        assert netplumber.insert_rule("b1", blackhole)
        network.box("b1").table.remove(blackhole)
        assert netplumber.remove_rule("b1", blackhole) == []

    def test_probe_mode_validated(self):
        netplumber = NetPlumber(toy_network())
        with pytest.raises(ValueError):
            netplumber.add_probe("b1", "h1", Wildcard.any(32), mode="maybe")

    def test_remove_probe(self):
        netplumber = NetPlumber(toy_network())
        probe = netplumber.add_probe("b1", "h1", Wildcard.any(32))
        netplumber.remove_probe(probe)
        assert netplumber.check_probes() == []

    def test_repr(self):
        assert "rule nodes" in repr(NetPlumber(toy_network()))
