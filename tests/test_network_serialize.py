"""Round-trip tests for network snapshots."""

from __future__ import annotations

import json
import random

import pytest

from repro.core.classifier import APClassifier
from repro.datasets import internet2_like, stanford_like, toy_network
from repro.network.serialize import (
    load_network,
    network_from_json,
    network_to_json,
    save_network,
)


def assert_equivalent(original, rebuilt, samples: int = 40, seed: int = 0) -> None:
    """Two networks are equivalent iff their compiled behaviors agree."""
    assert rebuilt.stats() == original.stats()
    assert rebuilt.layout == original.layout
    a = APClassifier.build(original)
    b = APClassifier.build(rebuilt)
    rng = random.Random(seed)
    boxes = sorted(original.boxes)
    for _ in range(samples):
        header = rng.getrandbits(original.layout.total_width)
        ingress = rng.choice(boxes)
        assert sorted(map(tuple, a.query(header, ingress).paths())) == sorted(
            map(tuple, b.query(header, ingress).paths())
        )


class TestRoundTrip:
    def test_toy(self):
        network = toy_network()
        assert_equivalent(network, network_from_json(network_to_json(network)))

    def test_internet2_like(self):
        network = internet2_like(prefixes_per_router=2)
        assert_equivalent(network, network_from_json(network_to_json(network)))

    def test_stanford_like_with_acls(self):
        network = stanford_like(subnets_per_zone=2, host_ports_per_zone=1)
        rebuilt = network_from_json(network_to_json(network))
        assert rebuilt.acl_rule_count() == network.acl_rule_count()
        assert_equivalent(network, rebuilt, samples=25)

    def test_file_round_trip(self, tmp_path):
        network = toy_network()
        path = tmp_path / "net.json"
        save_network(network, path)
        assert_equivalent(network, load_network(path), samples=15)


class TestFormat:
    def test_json_is_stable(self):
        network = toy_network()
        assert network_to_json(network) == network_to_json(network)

    def test_version_checked(self):
        payload = json.loads(network_to_json(toy_network()))
        payload["version"] = 99
        with pytest.raises(ValueError):
            network_from_json(json.dumps(payload))

    def test_human_readable_fields(self):
        payload = json.loads(network_to_json(toy_network()))
        assert payload["name"] == "toy"
        assert payload["layout"] == [["dst_ip", 32]]
        assert any(host["host"] == "h1" for host in payload["hosts"])

    def test_rule_priorities_preserved(self):
        network = toy_network()
        rebuilt = network_from_json(network_to_json(network))
        for name in network.boxes:
            original = [(r.priority, r.out_ports) for r in network.box(name).table]
            copied = [(r.priority, r.out_ports) for r in rebuilt.box(name).table]
            assert original == copied
