"""Tests for the observability layer (repro.obs) and its pipeline hooks."""

from __future__ import annotations

import json

import pytest

from repro.analysis.memory import BYTES_PER_CACHE_ENTRY, memory_report
from repro.bdd.manager import BDDManager
from repro.cli import main as cli_main
from repro.core.classifier import APClassifier
from repro.core.construction import build_tree
from repro.obs import (
    Recorder,
    SchemaError,
    UpdateCounters,
    validate_snapshot,
)
from repro.obs.validate import main as validate_main


def strict_roundtrip(payload: dict) -> dict:
    """Serialize/parse under strict-JSON rules (rejects NaN/Infinity)."""
    text = json.dumps(payload, allow_nan=False)
    return json.loads(
        text,
        parse_constant=lambda c: (_ for _ in ()).throw(ValueError(c)),
    )


# ----------------------------------------------------------------------
# BDD manager counters and the cache-clear policy
# ----------------------------------------------------------------------


class TestBDDCounters:
    def test_apply_hits_and_misses(self):
        mgr = BDDManager(4)
        recorder = Recorder()
        mgr.recorder = recorder
        recorder.attach_manager(mgr)
        mgr.apply_and(mgr.var(0), mgr.var(1))
        misses = recorder.bdd.apply_misses
        assert misses > 0
        assert recorder.bdd.apply_hits == 0
        # Same top-level call again: pure cache hit, no new misses.
        mgr.apply_and(mgr.var(0), mgr.var(1))
        assert recorder.bdd.apply_hits == 1
        assert recorder.bdd.apply_misses == misses

    def test_not_and_ite_counters(self):
        mgr = BDDManager(4)
        recorder = Recorder()
        mgr.recorder = recorder
        node = mgr.apply_or(mgr.var(0), mgr.var(2))
        mgr.negate(node)
        assert recorder.bdd.not_misses > 0
        mgr.negate(node)
        assert recorder.bdd.not_hits > 0
        mgr.ite(mgr.var(0), mgr.var(1), mgr.var(2))
        assert recorder.bdd.ite_misses > 0
        mgr.ite(mgr.var(0), mgr.var(1), mgr.var(2))
        assert recorder.bdd.ite_hits > 0

    def test_op_timings_opt_in(self):
        mgr = BDDManager(4)
        recorder = Recorder(time_bdd_ops=True)
        mgr.recorder = recorder
        mgr.apply_and(mgr.var(0), mgr.var(1))
        mgr.negate(mgr.var(2))
        mgr.ite(mgr.var(0), mgr.var(1), mgr.var(2))
        assert recorder.bdd.op_calls["and"] == 1
        assert recorder.bdd.op_calls["not"] == 1
        assert recorder.bdd.op_calls["ite"] == 1
        assert all(s >= 0.0 for s in recorder.bdd.op_seconds.values())

    def test_untimed_recorder_has_no_timings(self):
        mgr = BDDManager(4)
        mgr.recorder = Recorder()
        mgr.apply_and(mgr.var(0), mgr.var(1))
        assert mgr.recorder.bdd.op_calls == {}


class TestCachePolicy:
    def test_cache_stats_counts_entries(self):
        mgr = BDDManager(4)
        mgr.apply_and(mgr.var(0), mgr.var(1))
        stats = mgr.cache_stats()
        assert stats["apply_cache"] > 0
        assert stats["cache_entries"] == (
            stats["apply_cache"] + stats["not_cache"] + stats["ite_cache"]
        )
        assert stats["cache_clears"] == 0
        assert stats["cache_limit"] == mgr.cache_limit

    def test_clear_caches_preserves_semantics(self):
        mgr = BDDManager(6)
        node = mgr.apply_and(mgr.var(0), mgr.apply_or(mgr.var(1), mgr.var(5)))
        mgr.clear_caches()
        stats = mgr.cache_stats()
        assert stats["cache_entries"] == 0
        assert stats["cache_clears"] == 1
        # The unique table is untouched: identical ops rebuild the exact
        # same canonical node ids.
        again = mgr.apply_and(
            mgr.var(0), mgr.apply_or(mgr.var(1), mgr.var(5))
        )
        assert again == node

    def test_size_triggered_clear(self):
        mgr = BDDManager(8, cache_limit=8)
        recorder = Recorder()
        mgr.recorder = recorder
        pairs = [(i % 8, (i * 7 + 3) % 8) for i in range(24)]
        for a, b in pairs:
            if a != b:
                mgr.apply_and(mgr.var(a), mgr.var(b))
                mgr.apply_or(mgr.var(b), mgr.var(a))
        stats = mgr.cache_stats()
        assert stats["cache_clears"] > 0
        assert recorder.bdd.cache_clears == stats["cache_clears"]
        # The policy is checked at top-level entry, so one op may leave
        # more than `cache_limit` entries, but growth stays bounded.
        assert stats["apply_cache"] < 8 * 64

    def test_memory_report_counts_cache_entries(self, toy_net):
        clf = APClassifier.build(toy_net)
        report = memory_report(clf)
        expected = clf.dataplane.manager.cache_stats()["cache_entries"]
        assert report.cache_entries == expected
        assert report.cache_entries > 0
        without = report.total_bytes - report.cache_entries * BYTES_PER_CACHE_ENTRY
        assert without < report.total_bytes
        assert any("cache" in label for label, _ in report.rows())


# ----------------------------------------------------------------------
# Tree + classifier + update counters
# ----------------------------------------------------------------------


class TestTreeCounters:
    def test_depth_histogram_matches_tree(self, toy_universe):
        import random

        tree = build_tree(toy_universe, strategy="oapt").tree
        recorder = Recorder()
        with recorder.observe_tree(tree):
            rng = random.Random(5)
            atoms = list(toy_universe.atoms().values())
            headers = [rng.choice(atoms).random_sat(rng) for _ in range(64)]
            depths = [tree.classify_with_depth(h)[1] for h in headers]
        assert recorder.tree.queries == len(headers)
        assert recorder.tree.predicate_evaluations == sum(depths)
        histogram: dict[int, int] = {}
        for depth in depths:
            histogram[depth] = histogram.get(depth, 0) + 1
        assert recorder.tree.depth_histogram == histogram
        # Detached afterwards: nothing accrues.
        tree.classify(headers[0])
        assert recorder.tree.queries == len(headers)

    def test_classify_and_classify_many_agree_with_recorder(self, toy_universe):
        import random

        tree = build_tree(toy_universe, strategy="oapt").tree
        rng = random.Random(6)
        atoms = list(toy_universe.atoms().values())
        headers = [rng.choice(atoms).random_sat(rng) for _ in range(32)]
        plain = tree.classify_many(headers)
        recorder = Recorder()
        with recorder.observe_tree(tree):
            observed = tree.classify_many(headers)
            singles = [tree.classify(h) for h in headers]
        assert observed == plain == singles
        assert recorder.tree.queries == 2 * len(headers)


class TestUpdateCounters:
    def test_apply_splits_records(self, toy_net):
        from repro.datasets import rule_update_stream
        import random

        clf = APClassifier.build(toy_net)
        recorder = Recorder()
        clf.set_recorder(recorder)
        stream = rule_update_stream(toy_net, 12, random.Random(3))
        for update in stream:
            if update.kind == "insert":
                clf.insert_rule(update.box, update.rule)
            else:
                clf.remove_rule(update.box, update.rule)
        counters = recorder.updates
        assert counters.updates_applied > 0
        assert counters.split_events > 0
        assert counters.leaf_splits == counters.atoms_split
        assert counters.latency_count == counters.updates_applied
        assert counters.latency_total_s > 0.0

    def test_rebuild_and_reconstruct_counted(self, toy_net):
        clf = APClassifier.build(toy_net)
        recorder = Recorder()
        clf.set_recorder(recorder)
        clf.rebuild_tree()
        clf.reconstruct()
        assert recorder.updates.rebuilds == 1
        assert recorder.updates.reconstructs == 1
        # The swapped-in tree and rebuilt engine keep reporting.
        assert clf.tree.recorder is recorder
        assert clf._engine.recorder is recorder

    def test_stale_fallback_reasons(self):
        counters = UpdateCounters()
        counters.record_stale_fallback("swapped")
        counters.record_stale_fallback("version")
        counters.record_stale_fallback("version")
        assert counters.stale_fallback_swapped == 1
        assert counters.stale_fallback_version == 2
        assert counters.stale_fallbacks == 3


# ----------------------------------------------------------------------
# Snapshot shape, schema, and strict JSON
# ----------------------------------------------------------------------


class TestSnapshot:
    def test_empty_recorder_snapshot_validates(self):
        snapshot = Recorder().snapshot()
        assert validate_snapshot(snapshot) is snapshot
        assert strict_roundtrip(snapshot) == snapshot

    def test_populated_snapshot_validates(self, toy_net):
        import random

        clf = APClassifier.build(toy_net)
        recorder = Recorder(time_bdd_ops=True)
        with recorder.observe(clf):
            from repro.datasets import uniform_over_atoms

            trace = uniform_over_atoms(clf.universe, 64, random.Random(2))
            clf.classify_batch(trace.headers)
            clf.compile()
            clf.tree.touch()
            clf.classify(trace.headers[0])
        recorder.record_timeline_sample(0.05, 125_000.0, event="swap")
        snapshot = validate_snapshot(recorder.snapshot())
        assert snapshot["tree"]["queries"] == 65
        assert snapshot["updates"]["stale_fallbacks"]["version"] == 1
        assert snapshot["updates"]["compiles"] == 1
        assert snapshot["timeline"][0]["event"] == "swap"
        assert strict_roundtrip(snapshot) == snapshot

    def test_schema_rejects_bad_payloads(self):
        good = Recorder().snapshot()
        with pytest.raises(SchemaError):
            validate_snapshot({})
        wrong_schema = dict(good, schema="repro.obs.snapshot/999")
        with pytest.raises(SchemaError):
            validate_snapshot(wrong_schema)
        bad_type = json.loads(json.dumps(good))
        bad_type["tree"]["queries"] = "many"
        with pytest.raises(SchemaError):
            validate_snapshot(bad_type)
        nonfinite = json.loads(json.dumps(good))
        nonfinite["bdd"]["apply_cache"]["hit_rate"] = float("inf")
        with pytest.raises(SchemaError):
            validate_snapshot(nonfinite)

    def test_validate_cli(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(Recorder().snapshot()))
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert validate_main([str(good)]) == 0
        assert validate_main([str(good), str(bad)]) == 1
        out = capsys.readouterr().out
        assert "ok" in out and "FAIL" in out

    def test_validate_cli_rejects_infinity_literal(self, tmp_path):
        payload = tmp_path / "inf.json"
        payload.write_text('{"qps": Infinity}')
        assert validate_main([str(payload)]) == 1


# ----------------------------------------------------------------------
# CLI integration: repro stats --instrument
# ----------------------------------------------------------------------


class TestStatsInstrument:
    def test_emits_valid_snapshot_json(self, capsys):
        exit_code = cli_main(["stats", "--dataset", "toy", "--instrument"])
        assert exit_code == 0
        out = capsys.readouterr().out
        snapshot = json.loads(
            out,
            parse_constant=lambda c: (_ for _ in ()).throw(ValueError(c)),
        )
        validate_snapshot(snapshot)
        bdd = snapshot["bdd"]
        assert 0.0 <= bdd["apply_cache"]["hit_rate"] <= 1.0
        assert snapshot["tree"]["queries"] > 0
        assert snapshot["tree"]["depth_histogram"]
        assert snapshot["updates"]["updates_applied"] > 0
        assert snapshot["updates"]["stale_fallbacks"]["total"] >= 1
