"""Tests for the ordering strategies of Section V."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.bdd import BDDManager, Function
from repro.core.atomic import AtomicUniverse
from repro.core.construction import (
    best_from_random,
    build_oapt,
    build_optimal,
    build_quick_ordering,
    build_with_order,
)
from repro.core.ordering import (
    fixed_order_chooser,
    oapt_chooser,
    optimal_subtree_cost,
    quick_ordering,
)
from repro.network.dataplane import LabeledPredicate


def random_universe(
    num_vars: int, num_predicates: int, seed: int
) -> AtomicUniverse:
    """A universe from random predicates over a small space."""
    rng = random.Random(seed)
    mgr = BDDManager(num_vars)
    labeled = []
    for pid in range(num_predicates):
        points = {
            p for p in range(1 << num_vars) if rng.random() < rng.uniform(0.2, 0.8)
        }
        fn = Function.false(mgr)
        for point in points:
            fn = fn | Function.cube(
                mgr,
                {i: bool((point >> (num_vars - 1 - i)) & 1) for i in range(num_vars)},
            )
        labeled.append(LabeledPredicate(pid, "forward", "b", f"p{pid}", fn))
    return AtomicUniverse.compute(mgr, labeled)


class TestQuickOrdering:
    def test_descending_r_cardinality(self, internet2_classifier):
        universe = internet2_classifier.universe
        order = quick_ordering(universe)
        sizes = [len(universe.r(pid)) for pid in order]
        assert sizes == sorted(sizes, reverse=True)

    def test_order_is_deterministic(self, internet2_classifier):
        universe = internet2_classifier.universe
        assert quick_ordering(universe) == quick_ordering(universe)


class TestFixedOrderChooser:
    def test_picks_earliest_candidate(self):
        choose = fixed_order_chooser([5, 3, 9])
        assert choose([9, 3], frozenset()) == 3
        assert choose([9], frozenset()) == 9


class TestOaptOptimality:
    """OAPT is a heuristic; on small random inputs it should track the
    exhaustive optimum closely and never beat it."""

    @pytest.mark.parametrize("seed", range(8))
    def test_oapt_never_beats_optimal(self, seed):
        universe = random_universe(4, 5, seed)
        optimal_cost, _ = optimal_subtree_cost(universe)
        oapt_total = sum(build_oapt(universe).leaf_depths().values())
        assert oapt_total >= optimal_cost

    @pytest.mark.parametrize("seed", range(8))
    def test_optimal_beats_every_fixed_order(self, seed):
        universe = random_universe(4, 4, seed)
        optimal_cost, _ = optimal_subtree_cost(universe)
        pids = universe.predicate_ids()
        for order in itertools.permutations(pids):
            tree = build_with_order(universe, list(order))
            assert sum(tree.leaf_depths().values()) >= optimal_cost

    @pytest.mark.parametrize("seed", range(8))
    def test_oapt_close_to_optimal(self, seed):
        universe = random_universe(4, 5, seed)
        optimal_cost, _ = optimal_subtree_cost(universe)
        oapt_total = sum(build_oapt(universe).leaf_depths().values())
        # Heuristic slack bound: within 40% of optimal on small inputs.
        assert oapt_total <= optimal_cost * 1.4 + 1e-9


class TestOaptOnDatasets:
    def test_hierarchy_internet2(self, internet2_classifier):
        """Fig. 9 shape: OAPT <= Quick-Ordering <= Best-from-Random."""
        universe = internet2_classifier.universe
        oapt = build_oapt(universe).average_depth()
        quick = build_quick_ordering(universe).average_depth()
        best_random, _ = best_from_random(universe, trials=20, rng=random.Random(0))
        assert oapt <= quick * 1.01
        assert oapt <= best_random.average_depth() * 1.01

    def test_weighted_oapt_shrinks_hot_paths(self, internet2_classifier):
        universe = internet2_classifier.universe
        atoms = sorted(universe.atom_ids())
        hot = {atoms[0]: 500.0, atoms[1]: 300.0}
        weighted_tree = build_oapt(universe, weights=hot)
        unweighted_tree = build_oapt(universe)
        # Expected (weighted) depth under the hot distribution must not
        # get worse when the tree is built with those weights.
        assert weighted_tree.average_depth(hot) <= unweighted_tree.average_depth(hot) * 1.01


class TestPairwiseRelation:
    def test_chooser_survivor_not_inferior(self):
        """Re-scan with the survivor as the baseline: nothing beats it
        (the linear-scan correctness condition of Section V-C)."""
        universe = random_universe(4, 5, 99)
        choose = oapt_chooser(universe)
        atoms = universe.atom_ids()
        candidates = [
            pid
            for pid in universe.predicate_ids()
            if 0 < len(atoms & universe.r(pid)) < len(atoms)
        ]
        if len(candidates) < 2:
            pytest.skip("degenerate random instance")
        survivor = choose(candidates, atoms)
        # The survivor must re-win a scan that starts from itself.
        assert choose([survivor] + [c for c in candidates if c != survivor], atoms) == survivor


class TestOptimalCost:
    def test_single_atom_costs_zero(self):
        mgr = BDDManager(2)
        labeled = [LabeledPredicate(0, "forward", "b", "p", Function.true(mgr))]
        universe = AtomicUniverse.compute(mgr, labeled)
        cost, _ = optimal_subtree_cost(universe)
        assert cost == 0.0

    def test_two_atoms_cost_two(self):
        mgr = BDDManager(2)
        half = Function.variable(mgr, 0)
        labeled = [LabeledPredicate(0, "forward", "b", "p", half)]
        universe = AtomicUniverse.compute(mgr, labeled)
        cost, choice = optimal_subtree_cost(universe)
        assert cost == 2.0
        assert choice[universe.atom_ids()] == 0

    def test_weights_change_cost(self):
        universe = random_universe(3, 3, 5)
        unweighted, _ = optimal_subtree_cost(universe)
        heavy = {atom: 10.0 for atom in universe.atom_ids()}
        weighted, _ = optimal_subtree_cost(universe, weights=heavy)
        assert weighted == pytest.approx(unweighted * 10.0)
