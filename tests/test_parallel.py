"""The multi-core offline pipeline (``repro.parallel``).

The load-bearing property throughout is *output equivalence*: every
parallel entry point must produce the same artifacts as its serial
counterpart for any worker count -- same pids, same canonical atom ids
with the same BDD nodes, same ``R`` sets, same classifications.  The
divide-and-conquer merge gets a property test against serial
``AtomicUniverse.compute`` on two predicate substrates (random cubes and
real data plane predicates).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDDManager, Function
from repro.core.atomic import AtomicUniverse
from repro.core.classifier import APClassifier
from repro.core.construction import best_from_random, draw_trial_seeds
from repro.core.reconstruction import DynamicSimulation
from repro.datasets import internet2_like, toy_network
from repro.network.dataplane import DataPlane, LabeledPredicate
from repro.obs import Recorder, validate_snapshot
from repro.parallel import (
    ReconstructionProcess,
    WorkerPool,
    compute_atoms,
    merge_universes,
    offline_pipeline,
    parallel_best_from_random,
    parallel_dataplane,
    resolve_workers,
    restore_tree,
    restore_universe,
    shard,
    snapshot_tree,
    snapshot_universe,
)

NUM_VARS = 6


def labeled(pid: int, fn: Function) -> LabeledPredicate:
    return LabeledPredicate(pid, "forward", "t", "t", fn)


def canonical_atoms(universe: AtomicUniverse) -> dict[int, int]:
    return {
        atom_id: universe.atom_fn(atom_id).node
        for atom_id in universe.atom_ids()
    }


def assert_universes_identical(
    left: AtomicUniverse, right: AtomicUniverse
) -> None:
    assert canonical_atoms(left) == canonical_atoms(right)
    assert left.predicate_ids() == right.predicate_ids()
    for pid in left.predicate_ids():
        assert left.r(pid) == right.r(pid)


# ----------------------------------------------------------------------
# Pool plumbing
# ----------------------------------------------------------------------


def test_resolve_workers_argument_wins(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "4")
    assert resolve_workers(2) == 2
    assert resolve_workers() == 4
    monkeypatch.delenv("REPRO_WORKERS")
    assert resolve_workers() == 1
    assert resolve_workers(0) == 1
    assert resolve_workers(-3) == 1


def test_resolve_workers_rejects_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "many")
    with pytest.raises(ValueError, match="REPRO_WORKERS"):
        resolve_workers()


def test_shard_contiguous_and_near_even():
    items = list(range(10))
    shards = shard(items, 3)
    assert [item for chunk in shards for item in chunk] == items
    assert sorted(len(chunk) for chunk in shards) == [3, 3, 4]
    # Never more shards than items, never an empty shard.
    assert shard([1, 2], 8) == [[1], [2]]
    assert shard([], 4) == []
    assert shard(items, 1) == [items]


def test_worker_pool_serial_fallback_runs_in_process():
    with WorkerPool(1) as pool:
        assert pool.serial
        assert pool.map(len, ["aa", "b"]) == [2, 1]
        assert pool._pool is None  # no processes were ever created


def test_worker_pool_rejects_bad_start_method(monkeypatch):
    monkeypatch.setenv("REPRO_MP_START", "telepathy")
    with pytest.raises(ValueError, match="REPRO_MP_START"):
        WorkerPool(2)


# ----------------------------------------------------------------------
# Divide-and-conquer atoms: merge == serial compute (property tests)
# ----------------------------------------------------------------------


def random_cubes(rng: random.Random, manager: BDDManager, count: int):
    predicates = []
    for pid in range(count):
        literals = {
            var: rng.random() < 0.5
            for var in rng.sample(range(NUM_VARS), rng.randint(1, 3))
        }
        predicates.append(labeled(pid, Function.cube(manager, literals)))
    return predicates


@given(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=1, max_value=7),
)
@settings(max_examples=60, deadline=None)
def test_merge_matches_serial_compute_on_cubes(seed, count, cut):
    """merge(compute(P1), compute(P2)) == compute(P1 | P2), on cubes."""
    cut = min(cut, count - 1)
    rng = random.Random(seed)
    manager = BDDManager(NUM_VARS)
    predicates = random_cubes(rng, manager, count)
    serial = AtomicUniverse.compute(manager, predicates).renumber_canonical()
    left = AtomicUniverse.compute(manager, predicates[:cut])
    right = AtomicUniverse.compute(manager, predicates[cut:])
    merged = merge_universes(left, right).renumber_canonical()
    assert_universes_identical(serial, merged)
    assert merged.verify_partition()


def test_merge_matches_serial_compute_on_dataplane():
    """Same property on the second substrate: real network predicates."""
    dataplane = DataPlane(internet2_like())
    predicates = dataplane.predicates()
    serial = AtomicUniverse.compute(
        dataplane.manager, predicates
    ).renumber_canonical()
    rng = random.Random(9)
    for _ in range(5):
        cut = rng.randint(1, len(predicates) - 1)
        left = AtomicUniverse.compute(dataplane.manager, predicates[:cut])
        right = AtomicUniverse.compute(dataplane.manager, predicates[cut:])
        merged = merge_universes(left, right).renumber_canonical()
        assert_universes_identical(serial, merged)


def test_merge_rejects_overlapping_pids(toy_dataplane):
    universe = AtomicUniverse.compute(
        toy_dataplane.manager, toy_dataplane.predicates()
    )
    with pytest.raises(ValueError, match="share predicate pids"):
        merge_universes(universe, universe)


def test_compute_atoms_independent_of_worker_count(toy_dataplane):
    predicates = toy_dataplane.predicates()
    base = compute_atoms(toy_dataplane.manager, predicates, pool=WorkerPool(1))
    for workers in (2, 3, 5):
        universe = compute_atoms(
            toy_dataplane.manager, predicates, pool=WorkerPool(workers)
        )
        assert_universes_identical(base, universe)


# ----------------------------------------------------------------------
# Sharded conversion
# ----------------------------------------------------------------------


def test_parallel_dataplane_matches_serial():
    network = toy_network()
    manager = BDDManager(network.layout.total_width)
    serial = DataPlane(network, manager)
    parallel = parallel_dataplane(network, manager=manager, pool=WorkerPool(2))
    assert [lp.pid for lp in serial.predicates()] == [
        lp.pid for lp in parallel.predicates()
    ]
    for ours, theirs in zip(serial.predicates(), parallel.predicates()):
        assert (ours.kind, ours.box, ours.port) == (
            theirs.kind,
            theirs.box,
            theirs.port,
        )
        assert ours.fn.node == theirs.fn.node


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------


def test_parallel_best_from_random_matches_seeded_serial(toy_universe):
    tree, depths = parallel_best_from_random(
        toy_universe, trials=12, rng=random.Random(5), pool=WorkerPool(3)
    )
    serial_tree, serial_depths = best_from_random(
        toy_universe,
        seeds=draw_trial_seeds(random.Random(5), 12),
    )
    assert depths == serial_depths
    assert tree.leaf_depths() == serial_tree.leaf_depths()


def test_offline_pipeline_outputs_identical_across_worker_counts():
    network = internet2_like()
    manager = BDDManager(network.layout.total_width)
    results = {
        workers: offline_pipeline(
            network, manager=manager, pool=WorkerPool(workers)
        )
        for workers in (1, 2, 3)
    }
    base = results[1]
    headers = [
        random.Random(11).randrange(1 << network.layout.total_width)
        for _ in range(100)
    ]
    base_classes = [base.report.tree.classify(h) for h in headers]
    for workers in (2, 3):
        result = results[workers]
        assert [lp.pid for lp in result.dataplane.predicates()] == [
            lp.pid for lp in base.dataplane.predicates()
        ]
        assert_universes_identical(base.universe, result.universe)
        assert [
            result.report.tree.classify(h) for h in headers
        ] == base_classes


def test_classifier_build_with_workers_env(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "2")
    network = toy_network()
    parallel = APClassifier.build(network)
    monkeypatch.delenv("REPRO_WORKERS")
    serial = APClassifier.build(network)
    headers = [
        random.Random(13).randrange(1 << network.layout.total_width)
        for _ in range(50)
    ]
    # The serial path keeps refinement-order atom ids while the parallel
    # pipeline renumbers canonically, so compare the *partitions*: the
    # two labelings must be related by a bijection.
    pairs = {
        (serial.classify(h), parallel.classify(h)) for h in headers
    }
    assert len({a for a, _ in pairs}) == len(pairs)
    assert len({b for _, b in pairs}) == len(pairs)
    assert parallel.universe.atom_count == serial.universe.atom_count


# ----------------------------------------------------------------------
# Snapshots and the reconstruction process
# ----------------------------------------------------------------------


def test_universe_and_tree_snapshot_round_trip(toy_dataplane):
    universe = AtomicUniverse.compute(
        toy_dataplane.manager, toy_dataplane.predicates()
    ).renumber_canonical()
    from repro.core.construction import build_tree

    tree = build_tree(universe).tree
    fresh_manager = BDDManager(toy_dataplane.manager.num_vars)
    restored_universe = restore_universe(
        snapshot_universe(universe), fresh_manager
    )
    restored_tree = restore_tree(
        snapshot_tree(tree, universe), restored_universe
    )
    assert restored_universe.verify_partition()
    assert restored_universe.atom_count == universe.atom_count
    width = toy_dataplane.manager.num_vars
    for header in [random.Random(7).randrange(1 << width) for _ in range(64)]:
        assert restored_tree.classify(header) == tree.classify(header)


def test_reconstruction_process_round_trip():
    dataplane = DataPlane(internet2_like())
    predicates = dataplane.predicates()
    serial = AtomicUniverse.compute(
        dataplane.manager, predicates
    ).renumber_canonical()
    with ReconstructionProcess(dataplane.manager, strategy="oapt") as recon:
        assert not recon.busy
        recon.submit(predicates)
        assert recon.busy
        universe, tree, elapsed = recon.receive()
    assert elapsed > 0
    assert_universes_identical(serial, universe)
    width = dataplane.manager.num_vars
    for header in [random.Random(8).randrange(1 << width) for _ in range(64)]:
        assert tree.classify(header) == universe.classify(header)


def test_reconstruction_process_rejects_double_submit(toy_dataplane):
    with ReconstructionProcess(toy_dataplane.manager) as recon:
        recon.submit(toy_dataplane.predicates())
        with pytest.raises(RuntimeError, match="in flight"):
            recon.submit(toy_dataplane.predicates())
        recon.receive()


def test_dynamic_simulation_process_mode_swaps_and_replays():
    dataplane = DataPlane(internet2_like())
    recorder = Recorder()
    with DynamicSimulation(
        dataplane.predicates(),
        initial_count=40,
        reconstruction="process",
        reconstruct_interval_s=0.2,
        bucket_s=0.05,
        rng=random.Random(3),
        recorder=recorder,
    ) as sim:
        samples = sim.run(duration_s=1.5, update_rate_per_s=30.0)
        events = [sample.event for sample in samples if sample.event]
        # The worker rebuild races real wall time, not the simulated
        # clock: under load it can outlive one run() window.  In-flight
        # rebuilds carry across run() calls, so extend the simulation
        # until the swap lands instead of guessing a duration.
        for _ in range(40):
            if "swap" in events:
                break
            more = sim.run(duration_s=0.5, update_rate_per_s=30.0)
            events += [sample.event for sample in more if sample.event]
    assert "rebuild_start" in events
    assert "swap" in events
    snapshot = validate_snapshot(recorder.snapshot())
    assert snapshot["updates"]["rebuilds"] >= 1
    # The query process kept updating during the real background rebuild,
    # so at least one update should have been replayed before a swap.
    assert snapshot["updates"]["replayed"] >= 1


def test_dynamic_simulation_rejects_unknown_reconstruction(toy_dataplane):
    with pytest.raises(ValueError, match="reconstruction"):
        DynamicSimulation(
            toy_dataplane.predicates(),
            initial_count=2,
            reconstruction="quantum",
        )


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------


def test_pipeline_records_parallel_counters():
    recorder = Recorder()
    result = offline_pipeline(
        toy_network(), pool=WorkerPool(2), recorder=recorder
    )
    assert result.workers == 2
    snapshot = validate_snapshot(recorder.snapshot())
    parallel = snapshot["parallel"]
    assert parallel["workers"] == 2
    assert parallel["pool_tasks"] >= 2
    assert set(parallel["stage_seconds"]) == {"convert", "atoms", "build"}
    assert parallel["bytes_to_workers"] > 0
    assert parallel["bytes_from_workers"] > 0
    assert parallel["merge_atom_counts"]
    assert sum(parallel["shard_sizes"]["atoms"]) == len(
        result.dataplane.predicates()
    )
