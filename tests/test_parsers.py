"""Tests for the textual rule parsers."""

from __future__ import annotations

import pytest

from repro.headerspace.fields import (
    dst_ip_layout,
    five_tuple_layout,
    parse_ipv4,
)
from repro.headerspace.header import Packet
from repro.network.parsers import (
    ParseError,
    parse_acl,
    parse_acl_line,
    parse_route_line,
    parse_routes,
)


class TestRouteLine:
    def test_simple_route(self):
        rule = parse_route_line("route 10.1.0.0/16 -> eth0")
        assert rule.out_ports == ("eth0",)
        assert rule.priority == 16
        constraint = rule.match.constraint_for("dst_ip")
        assert constraint.value == parse_ipv4("10.1.0.0")
        assert constraint.prefix_len == 16

    def test_multicast_route(self):
        rule = parse_route_line("route 224.0.0.0/4 -> p1, p2")
        assert rule.out_ports == ("p1", "p2")

    def test_drop_route(self):
        rule = parse_route_line("route 0.0.0.0/0 drop")
        assert rule.is_drop
        assert rule.match.is_any

    def test_host_route_default_length(self):
        rule = parse_route_line("route 10.0.0.1 -> lo")
        assert rule.match.constraint_for("dst_ip").prefix_len == 32

    def test_comments_stripped(self):
        rule = parse_route_line("route 10.0.0.0/8 -> e0  # customer block")
        assert rule.out_ports == ("e0",)

    @pytest.mark.parametrize(
        "bad",
        [
            "10.0.0.0/8 -> e0",        # missing keyword
            "route 10.0.0.0/8",        # no action
            "route 10.0.0.0/40 -> e0", # bad prefix length
            "route ten.zero/8 -> e0",  # bad address
            "route 10.0.0.0/8 -> ",    # empty port list
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ParseError):
            parse_route_line(bad, line_no=3)

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError, match="line 7"):
            parse_route_line("garbage", line_no=7)


class TestRouteDocument:
    def test_document_builds_lpm_table(self):
        table = parse_routes(
            """
            # backbone routes
            route 10.0.0.0/8 -> coarse
            route 10.1.0.0/16 -> fine
            """
        )
        assert len(table) == 2
        packet = Packet.of(dst_ip_layout(), dst_ip="10.1.2.3")
        assert table.lookup(packet) == ("fine",)

    def test_blank_document(self):
        assert len(parse_routes("\n\n# nothing\n")) == 0


class TestAclLine:
    LAYOUT = five_tuple_layout()

    def test_permit_any(self):
        rule = parse_acl_line("permit ip any any", self.LAYOUT)
        assert rule.permit and rule.match.is_any

    def test_deny_source_prefix(self):
        rule = parse_acl_line("deny ip 10.1.0.0/16 any", self.LAYOUT)
        assert not rule.permit
        constraint = rule.match.constraint_for("src_ip")
        assert constraint.prefix_len == 16

    def test_tcp_with_port(self):
        rule = parse_acl_line(
            "permit tcp any 171.64.0.0/14 eq 80", self.LAYOUT
        )
        assert rule.match.constraint_for("proto").value == 6
        assert rule.match.constraint_for("dst_port").value == 80
        assert rule.match.constraint_for("dst_ip").prefix_len == 14

    def test_host_keyword(self):
        rule = parse_acl_line("deny udp host 10.0.0.1 any", self.LAYOUT)
        assert rule.match.constraint_for("src_ip").prefix_len == 32
        assert rule.match.constraint_for("proto").value == 17

    @pytest.mark.parametrize(
        "bad",
        [
            "allow ip any any",              # bad action
            "permit gre any any",            # unknown protocol
            "permit ip any",                 # missing destination
            "permit tcp any any eq",         # missing port
            "permit tcp any any eq banana",  # non-numeric port
            "permit tcp any any eq 99999",   # port out of range
            "permit tcp any any range 1 2",  # unsupported qualifier
            "permit ip host",                # host without address
            "permit ip any any extra",       # trailing junk
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ParseError):
            parse_acl_line(bad, self.LAYOUT, line_no=1)

    def test_proto_requires_field(self):
        with pytest.raises(ParseError):
            parse_acl_line("permit tcp any any", dst_ip_layout())


class TestAclDocument:
    def test_first_match_order_preserved(self):
        layout = five_tuple_layout()
        acl = parse_acl(
            """
            deny   ip 10.1.0.0/16 any
            permit ip any any
            """,
            layout,
        )
        blocked = Packet.of(layout, src_ip="10.1.0.5", dst_ip="171.64.0.1")
        passed = Packet.of(layout, src_ip="10.2.0.5", dst_ip="171.64.0.1")
        assert not acl.permits(blocked)
        assert acl.permits(passed)

    def test_parsed_acl_compiles_to_predicate(self):
        """End-to-end: text -> ACL -> BDD predicate -> same semantics."""
        from repro.network.predicates import PredicateCompiler

        layout = five_tuple_layout()
        acl = parse_acl(
            """
            deny   tcp any any eq 23
            permit ip any any
            """,
            layout,
        )
        compiler = PredicateCompiler(layout)
        fn = compiler.acl_predicate(acl)
        telnet = Packet.of(layout, dst_port=23, proto=6)
        web = Packet.of(layout, dst_port=80, proto=6)
        telnet_udp = Packet.of(layout, dst_port=23, proto=17)
        assert not fn.evaluate(telnet.value)
        assert fn.evaluate(web.value)
        assert fn.evaluate(telnet_udp.value)  # deny was TCP-only
