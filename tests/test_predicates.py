"""Tests for rule -> BDD predicate compilation.

The compiled predicates must agree exactly with the direct (packet-level)
interpretation of the tables and ACLs; property tests enforce that on
random rule sets.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDDManager
from repro.headerspace.fields import HeaderLayout, dst_ip_layout, parse_ipv4
from repro.headerspace.header import Packet
from repro.network.predicates import PredicateCompiler
from repro.network.rules import AclRule, ForwardingRule, Match
from repro.network.tables import Acl, ForwardingTable

SMALL = HeaderLayout([("dst", 6)])


@pytest.fixture()
def compiler() -> PredicateCompiler:
    return PredicateCompiler(dst_ip_layout())


class TestCompilerBasics:
    def test_manager_width_checked(self):
        with pytest.raises(ValueError):
            PredicateCompiler(dst_ip_layout(), BDDManager(8))

    def test_match_predicate_any_is_true(self, compiler):
        assert compiler.match_predicate(Match.any()).is_true

    def test_match_predicate_agrees_with_match(self, compiler):
        match = Match.prefix("dst_ip", parse_ipv4("10.1.0.0"), 16)
        fn = compiler.match_predicate(match)
        inside = Packet.of(dst_ip_layout(), dst_ip="10.1.3.4")
        outside = Packet.of(dst_ip_layout(), dst_ip="10.2.0.0")
        assert fn.evaluate(inside.value)
        assert not fn.evaluate(outside.value)


class TestAclCompilation:
    def test_deny_then_permit(self, compiler):
        acl = Acl(
            [
                AclRule(Match.prefix("dst_ip", parse_ipv4("10.1.0.0"), 16), permit=False),
                AclRule(Match.any(), permit=True),
            ]
        )
        fn = compiler.acl_predicate(acl)
        assert not fn.evaluate(parse_ipv4("10.1.0.1"))
        assert fn.evaluate(parse_ipv4("10.2.0.1"))

    def test_empty_default_deny_is_false(self, compiler):
        assert compiler.acl_predicate(Acl()).is_false

    def test_empty_default_permit_is_true(self, compiler):
        assert compiler.acl_predicate(Acl(default_permit=True)).is_true

    def test_shadowed_permit_is_ineffective(self, compiler):
        acl = Acl(
            [
                AclRule(Match.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8), permit=False),
                AclRule(Match.prefix("dst_ip", parse_ipv4("10.1.0.0"), 16), permit=True),
            ]
        )
        fn = compiler.acl_predicate(acl)
        assert not fn.evaluate(parse_ipv4("10.1.0.1"))


class TestForwardingCompilation:
    def test_lpm_shadowing(self, compiler):
        table = ForwardingTable(
            [
                ForwardingRule(Match.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8), ("coarse",), 8),
                ForwardingRule(Match.prefix("dst_ip", parse_ipv4("10.1.0.0"), 16), ("fine",), 16),
            ]
        )
        preds = compiler.port_predicates(table)
        assert preds["fine"].evaluate(parse_ipv4("10.1.9.9"))
        assert not preds["coarse"].evaluate(parse_ipv4("10.1.9.9"))
        assert preds["coarse"].evaluate(parse_ipv4("10.9.0.0"))

    def test_fully_shadowed_port_is_false(self, compiler):
        table = ForwardingTable(
            [
                ForwardingRule(Match.prefix("dst_ip", parse_ipv4("10.1.0.0"), 16), ("hidden",), 8),
                ForwardingRule(Match.prefix("dst_ip", parse_ipv4("10.1.0.0"), 16), ("shadow",), 16),
            ]
        )
        preds = compiler.port_predicates(table)
        assert preds["hidden"].is_false
        assert not preds["shadow"].is_false

    def test_multicast_rule_feeds_all_ports(self, compiler):
        table = ForwardingTable(
            [ForwardingRule(Match.prefix("dst_ip", parse_ipv4("224.0.0.0"), 4), ("p1", "p2"), 4)]
        )
        preds = compiler.port_predicates(table)
        value = parse_ipv4("224.1.2.3")
        assert preds["p1"].evaluate(value) and preds["p2"].evaluate(value)

    def test_drop_rule_shadows(self, compiler):
        table = ForwardingTable(
            [
                ForwardingRule(Match.prefix("dst_ip", parse_ipv4("10.1.0.0"), 16), (), 16),
                ForwardingRule(Match.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8), ("out",), 8),
            ]
        )
        preds = compiler.port_predicates(table)
        assert not preds["out"].evaluate(parse_ipv4("10.1.0.1"))
        assert preds["out"].evaluate(parse_ipv4("10.2.0.1"))


# ----------------------------------------------------------------------
# Property tests over a 6-bit header space (exhaustively checkable)
# ----------------------------------------------------------------------

prefix_matches = st.tuples(
    st.integers(min_value=0, max_value=63), st.integers(min_value=0, max_value=6)
).map(lambda vp: Match.prefix("dst", vp[0], vp[1]))


@st.composite
def forwarding_tables(draw):
    rules = draw(
        st.lists(
            st.tuples(prefix_matches, st.sampled_from(["p0", "p1", "p2", ""])),
            min_size=1,
            max_size=8,
        )
    )
    table = ForwardingTable()
    for match, port in rules:
        constraint = match.constraint_for("dst")
        priority = constraint.prefix_len if constraint else 0
        out_ports = (port,) if port else ()
        table.add(ForwardingRule(match, out_ports, priority))
    return table


@st.composite
def acls(draw):
    rules = draw(
        st.lists(st.tuples(prefix_matches, st.booleans()), max_size=6)
    )
    default = draw(st.booleans())
    return Acl([AclRule(m, permit=p) for m, p in rules], default_permit=default)


@given(forwarding_tables())
@settings(max_examples=100)
def test_port_predicates_agree_with_lookup(table):
    compiler = PredicateCompiler(SMALL)
    preds = compiler.port_predicates(table)
    for value in range(64):
        pkt = Packet(SMALL, value)
        expected_ports = set(table.lookup(pkt))
        compiled_ports = {
            port for port, fn in preds.items() if fn.evaluate(value)
        }
        assert compiled_ports == expected_ports


@given(acls())
@settings(max_examples=100)
def test_acl_predicate_agrees_with_permits(acl):
    compiler = PredicateCompiler(SMALL)
    fn = compiler.acl_predicate(acl)
    for value in range(64):
        assert fn.evaluate(value) == acl.permits(Packet(SMALL, value))
