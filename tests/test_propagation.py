"""Tests for atom-set propagation (the AP Verifier algorithm).

The crucial property: propagation (one BFS over integer sets) and the
per-atom behavior walks must report identical reachability -- two very
different algorithms acting as oracles for each other.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classifier import APClassifier
from repro.core.propagation import AtomPropagation
from repro.core.verifier import NetworkVerifier
from repro.datasets import fattree, random_network, toy_network
from repro.headerspace.fields import dst_ip_layout, parse_ipv4
from repro.network.builder import Network
from repro.network.rules import AclRule, Match


@pytest.fixture(scope="module")
def toy_setup():
    classifier = APClassifier.build(toy_network())
    return classifier, AtomPropagation.from_classifier(classifier)


class TestToy:
    def test_host_reachability(self, toy_setup):
        classifier, propagation = toy_setup
        outcome = propagation.propagate("b1")
        h1_atom = classifier.classify(parse_ipv4("10.1.0.1"))
        assert outcome.reaches("h1", h1_atom)
        h2_atom = classifier.classify(parse_ipv4("10.2.0.1"))
        assert outcome.reaches("h2", h2_atom)
        # The b2-only deliverable class does not reach h2 from b1.
        stranded = classifier.classify(parse_ipv4("10.3.0.1"))
        assert not outcome.reaches("h2", stranded)

    def test_traversal(self, toy_setup):
        classifier, propagation = toy_setup
        outcome = propagation.propagate("b1")
        via_b2 = classifier.classify(parse_ipv4("10.2.0.1"))
        assert outcome.traverses("b2", via_b2)
        local = classifier.classify(parse_ipv4("10.1.0.1"))
        assert not outcome.traverses("b2", local)

    def test_port_sets(self, toy_setup):
        classifier, propagation = toy_setup
        outcome = propagation.propagate("b1")
        to_b2 = outcome.atoms_on_port.get(("b1", "to_b2"), frozenset())
        assert classifier.classify(parse_ipv4("10.2.0.1")) in to_b2

    def test_unknown_ingress(self, toy_setup):
        _, propagation = toy_setup
        with pytest.raises(KeyError):
            propagation.propagate("nope")


class TestAgreementWithVerifier:
    def test_toy_agreement(self, toy_setup):
        classifier, propagation = toy_setup
        verifier = NetworkVerifier.from_classifier(classifier)
        for ingress in ("b1", "b2"):
            outcome = propagation.propagate(ingress)
            for host in ("h1", "h2"):
                assert outcome.atoms_at_host.get(host, frozenset()) == (
                    verifier.atoms_reaching_host(ingress, host)
                )

    def test_fattree_agreement(self):
        classifier = APClassifier.build(fattree(4))
        propagation = AtomPropagation.from_classifier(classifier)
        verifier = NetworkVerifier.from_classifier(classifier)
        outcome = propagation.propagate("edge_0_0")
        for _, host in classifier.dataplane.network.topology.hosts():
            assert outcome.atoms_at_host.get(host, frozenset()) == (
                verifier.atoms_reaching_host("edge_0_0", host)
            )

    def test_stanford_with_acls_agreement(self, stanford_classifier):
        """ACL-heavy plane: propagation must honor in/out ACL filters
        exactly as the per-atom walks do."""
        propagation = AtomPropagation.from_classifier(stanford_classifier)
        verifier = NetworkVerifier.from_classifier(stanford_classifier)
        network = stanford_classifier.dataplane.network
        for ingress in ("zr01", "bbra"):
            outcome = propagation.propagate(ingress)
            for _, host in list(network.topology.hosts())[:6]:
                assert outcome.atoms_at_host.get(host, frozenset()) == (
                    verifier.atoms_reaching_host(ingress, host)
                )

    @given(seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=12, deadline=None)
    def test_random_network_agreement(self, seed):
        network = random_network(boxes=4, prefixes=5, seed=seed)
        classifier = APClassifier.build(network)
        propagation = AtomPropagation.from_classifier(classifier)
        verifier = NetworkVerifier.from_classifier(classifier)
        ingress = sorted(network.boxes)[seed % len(network.boxes)]
        outcome = propagation.propagate(ingress)
        for _, host in network.topology.hosts():
            assert outcome.atoms_at_host.get(host, frozenset()) == (
                verifier.atoms_reaching_host(ingress, host)
            )

    def test_loop_tolerance(self):
        """Propagation terminates on loops and delivers consistently."""
        network = Network(dst_ip_layout(), name="loopy")
        for name in ("a", "b"):
            network.add_box(name)
        network.link("a", "to_b", "b", "from_a")
        network.link("b", "to_a", "a", "from_b")
        network.attach_host("b", "cust", "h")
        loop_match = Match.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8)
        network.add_forwarding_rule("a", loop_match, "to_b", 8)
        network.add_forwarding_rule("b", loop_match, "to_a", 8)
        network.add_forwarding_rule(
            "b", Match.prefix("dst_ip", parse_ipv4("10.7.0.0"), 16), "cust", 16
        )
        classifier = APClassifier.build(network)
        propagation = AtomPropagation.from_classifier(classifier)
        outcome = propagation.propagate("a")
        delivered = classifier.classify(parse_ipv4("10.7.0.1"))
        assert outcome.reaches("h", delivered)
        looping = classifier.classify(parse_ipv4("10.8.0.1"))
        assert not outcome.reaches("h", looping)


class TestAclInteraction:
    def test_input_acl_filters_propagation(self):
        network = Network(dst_ip_layout(), name="acl-prop")
        network.add_box("a")
        network.add_box("b")
        network.link("a", "to_b", "b", "from_a")
        network.attach_host("b", "cust", "h")
        match = Match.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8)
        network.add_forwarding_rule("a", match, "to_b", 8)
        network.add_forwarding_rule("b", match, "cust", 8)
        network.add_input_acl(
            "b",
            "from_a",
            [AclRule(Match.prefix("dst_ip", parse_ipv4("10.9.0.0"), 16), permit=False)],
            default_permit=True,
        )
        classifier = APClassifier.build(network)
        propagation = AtomPropagation.from_classifier(classifier)
        outcome = propagation.propagate("a")
        blocked = classifier.classify(parse_ipv4("10.9.0.1"))
        allowed = classifier.classify(parse_ipv4("10.8.0.1"))
        assert not outcome.reaches("h", blocked)
        assert outcome.reaches("h", allowed)

    def test_ingress_port_acl(self):
        network = Network(dst_ip_layout(), name="ingress-acl")
        network.add_box("a")
        network.attach_host("a", "cust", "h")
        network.add_forwarding_rule(
            "a", Match.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8), "cust", 8
        )
        network.add_input_acl(
            "a", "uplink", [AclRule(Match.any(), permit=False)]
        )
        classifier = APClassifier.build(network)
        propagation = AtomPropagation.from_classifier(classifier)
        via_acl = propagation.propagate("a", in_port="uplink")
        assert not via_acl.atoms_at_host
        direct = propagation.propagate("a")
        assert direct.atoms_at_host


class TestAllPairs:
    def test_matches_verifier_matrix(self, toy_setup):
        classifier, propagation = toy_setup
        verifier = NetworkVerifier.from_classifier(classifier)
        assert propagation.all_pairs_host_reachability() == (
            verifier.reachability_matrix()
        )
