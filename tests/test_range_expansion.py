"""Tests for range-to-prefix expansion and the ACL 'range' qualifier."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.headerspace.fields import five_tuple_layout
from repro.headerspace.header import Packet
from repro.headerspace.wildcard import range_to_prefixes
from repro.network.parsers import ParseError, parse_acl, parse_acl_line, parse_acl_rules


class TestRangeToPrefixes:
    def test_full_range_is_one_prefix(self):
        assert range_to_prefixes(0, 15, 4) == [(0, 0)]

    def test_single_value(self):
        assert range_to_prefixes(5, 5, 4) == [(5, 4)]

    def test_classic_example(self):
        # [1, 14] over 4 bits: the worst-case 2w-2 = 6 prefixes.
        prefixes = range_to_prefixes(1, 14, 4)
        assert len(prefixes) == 6

    def test_aligned_block(self):
        assert range_to_prefixes(8, 15, 4) == [(8, 1)]

    def test_validation(self):
        with pytest.raises(ValueError):
            range_to_prefixes(3, 2, 4)
        with pytest.raises(ValueError):
            range_to_prefixes(0, 16, 4)
        with pytest.raises(ValueError):
            range_to_prefixes(0, 1, 0)

    @given(
        bounds=st.tuples(
            st.integers(min_value=0, max_value=255),
            st.integers(min_value=0, max_value=255),
        ).map(sorted)
    )
    @settings(max_examples=200)
    def test_cover_is_exact_and_disjoint(self, bounds):
        low, high = bounds
        prefixes = range_to_prefixes(low, high, 8)
        covered: set[int] = set()
        for value, prefix_len in prefixes:
            size = 1 << (8 - prefix_len)
            assert value % size == 0, "block must be aligned"
            block = set(range(value, value + size))
            assert not block & covered, "blocks must be disjoint"
            covered |= block
        assert covered == set(range(low, high + 1))

    @given(
        bounds=st.tuples(
            st.integers(min_value=0, max_value=65535),
            st.integers(min_value=0, max_value=65535),
        ).map(sorted)
    )
    @settings(max_examples=100)
    def test_prefix_count_bound(self, bounds):
        low, high = bounds
        assert len(range_to_prefixes(low, high, 16)) <= 2 * 16 - 2


class TestAclRangeQualifier:
    LAYOUT = five_tuple_layout()

    def test_range_expands_to_multiple_rules(self):
        rules = parse_acl_rules(
            "deny tcp any any range 6000 6063", self.LAYOUT
        )
        assert len(rules) >= 1
        # 6000..6063 is 64 values starting at a 16-aligned boundary:
        # blocks (6000,16), (6016,32), (6048,16)? -> verify semantics only.
        acl = parse_acl("deny tcp any any range 6000 6063\npermit ip any any",
                        self.LAYOUT)
        for port in (5999, 6000, 6030, 6063, 6064):
            packet = Packet.of(self.LAYOUT, dst_port=port, proto=6)
            expected = not (6000 <= port <= 6063)
            assert acl.permits(packet) == expected

    def test_range_semantics_exhaustive_small(self):
        acl = parse_acl(
            "deny udp any any range 30 37\npermit ip any any", self.LAYOUT
        )
        for port in range(20, 50):
            packet = Packet.of(self.LAYOUT, dst_port=port, proto=17)
            assert acl.permits(packet) == (not 30 <= port <= 37)

    def test_range_validation(self):
        with pytest.raises(ParseError):
            parse_acl_rules("deny tcp any any range 10 5", self.LAYOUT)
        with pytest.raises(ParseError):
            parse_acl_rules("deny tcp any any range 10", self.LAYOUT)
        with pytest.raises(ParseError):
            parse_acl_rules("deny tcp any any range 10 99999", self.LAYOUT)

    def test_single_rule_api_rejects_expansion(self):
        with pytest.raises(ParseError):
            parse_acl_line("deny tcp any any range 1 14", self.LAYOUT)

    def test_single_rule_api_accepts_aligned_range(self):
        rule = parse_acl_line("deny tcp any any range 0 65535", self.LAYOUT)
        assert rule.match.constraint_for("dst_port").prefix_len == 0

    def test_range_compiles_to_predicate(self):
        """Parsed range ACL through the BDD compiler: same semantics."""
        from repro.network.predicates import PredicateCompiler

        acl = parse_acl(
            "permit tcp any any range 1000 2000", self.LAYOUT
        )
        compiler = PredicateCompiler(self.LAYOUT)
        fn = compiler.acl_predicate(acl)
        for port in (999, 1000, 1500, 2000, 2001):
            packet = Packet.of(self.LAYOUT, dst_port=port, proto=6)
            assert fn.evaluate(packet.value) == (1000 <= port <= 2000)
