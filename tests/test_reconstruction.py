"""Tests for the dynamic-network simulation (Section VI-B / Fig. 14)."""

from __future__ import annotations

import random

import pytest

from repro.core.reconstruction import (
    DynamicSimulation,
    QueryCostModel,
    UpdateEvent,
    poisson_update_schedule,
)
from repro.datasets import internet2_like
from repro.network.dataplane import DataPlane


@pytest.fixture(scope="module")
def predicate_pool():
    return DataPlane(internet2_like(prefixes_per_router=3)).predicates()


class TestPoissonSchedule:
    def test_rate_is_respected(self):
        rng = random.Random(1)
        events = poisson_update_schedule(100.0, 10.0, rng)
        # Expect ~1000 events; allow generous tolerance.
        assert 800 <= len(events) <= 1200

    def test_times_sorted_and_bounded(self):
        rng = random.Random(2)
        events = poisson_update_schedule(50.0, 2.0, rng)
        times = [event.at for event in events]
        assert times == sorted(times)
        assert all(0 < t < 2.0 for t in times)

    def test_both_kinds_present(self):
        rng = random.Random(3)
        kinds = {e.kind for e in poisson_update_schedule(100.0, 5.0, rng)}
        assert kinds == {"add", "delete"}

    def test_event_kind_validated(self):
        with pytest.raises(ValueError):
            UpdateEvent(at=0.0, kind="mutate")


class TestQueryCostModel:
    def test_measures_positive_cost(self):
        model = QueryCostModel([1, 2, 3], repeat=5)
        cost = model.measure(lambda header: header)
        assert cost > 0

    def test_needs_samples(self):
        with pytest.raises(ValueError):
            QueryCostModel([])


class TestDynamicSimulation:
    def test_invalid_method_rejected(self, predicate_pool):
        with pytest.raises(ValueError):
            DynamicSimulation(predicate_pool, 10, method="magic")

    def test_initial_count_validated(self, predicate_pool):
        with pytest.raises(ValueError):
            DynamicSimulation(predicate_pool, 0)
        with pytest.raises(ValueError):
            DynamicSimulation(predicate_pool, len(predicate_pool) + 1)

    @pytest.mark.parametrize("method", DynamicSimulation.METHODS)
    def test_all_methods_produce_timelines(self, predicate_pool, method):
        sim = DynamicSimulation(
            predicate_pool,
            initial_count=min(25, len(predicate_pool)),
            method=method,
            rng=random.Random(5),
            cost_samples=30,
            bucket_s=0.1,
        )
        samples = sim.run(duration_s=0.5, update_rate_per_s=50)
        assert len(samples) == 5
        assert all(sample.throughput_qps > 0 for sample in samples)

    def test_apclassifier_swaps_during_run(self, predicate_pool):
        sim = DynamicSimulation(
            predicate_pool,
            initial_count=min(30, len(predicate_pool)),
            method="apclassifier",
            reconstruct_interval_s=0.3,
            rng=random.Random(6),
            cost_samples=30,
            bucket_s=0.05,
        )
        samples = sim.run(duration_s=1.0, update_rate_per_s=100)
        events = [sample.event for sample in samples if sample.event]
        assert "swap" in events

    def test_apclassifier_faster_than_pscan(self, predicate_pool):
        """The Fig. 14 headline: AP Classifier is well above PScan."""

        def mean_qps(method: str) -> float:
            sim = DynamicSimulation(
                predicate_pool,
                initial_count=min(40, len(predicate_pool)),
                method=method,
                rng=random.Random(7),
                cost_samples=40,
                bucket_s=0.1,
            )
            samples = sim.run(duration_s=0.4, update_rate_per_s=50)
            return sum(s.throughput_qps for s in samples) / len(samples)

        assert mean_qps("apclassifier") > mean_qps("pscan")

    def test_classification_stays_correct_through_run(self, predicate_pool):
        sim = DynamicSimulation(
            predicate_pool,
            initial_count=min(25, len(predicate_pool)),
            method="apclassifier",
            rng=random.Random(8),
            cost_samples=20,
            bucket_s=0.1,
        )
        sim.run(duration_s=0.6, update_rate_per_s=100)
        process = sim._process
        rng = random.Random(9)
        for _ in range(40):
            header = rng.getrandbits(32)
            assert process.tree is not None
            assert process.tree.classify(header) == process.universe.classify(header)
