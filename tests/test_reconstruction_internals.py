"""Edge-case tests for the dynamic simulation internals and batch
classification."""

from __future__ import annotations

import random

import pytest

from repro.core.reconstruction import DynamicSimulation
from repro.datasets import internet2_like, uniform_over_atoms
from repro.network.dataplane import DataPlane, LabeledPredicate


@pytest.fixture(scope="module")
def pool():
    return DataPlane(internet2_like(prefixes_per_router=2)).predicates()


class TestPickUpdateFallbacks:
    def test_add_falls_back_when_reserve_empty(self, pool):
        sim = DynamicSimulation(
            pool, initial_count=len(pool), rng=random.Random(0), cost_samples=10
        )
        # Reserve is empty: an "add" must become a delete.
        kind, payload = sim._pick_update("add")
        assert kind == "delete"
        assert isinstance(payload, int)

    def test_delete_falls_back_when_one_left(self, pool):
        sim = DynamicSimulation(
            pool, initial_count=1, rng=random.Random(1), cost_samples=10
        )
        kind, payload = sim._pick_update("delete")
        assert kind == "add"
        # The full labeled predicate rides the journal, not a bare fn.
        assert isinstance(payload, LabeledPredicate)
        assert payload.fn is not None

    def test_synthetic_pids_never_collide(self, pool):
        sim = DynamicSimulation(
            pool,
            initial_count=len(pool) // 2,
            rng=random.Random(2),
            cost_samples=10,
        )
        existing = {lp.pid for lp in pool}
        minted = set()
        for _ in range(10):
            kind, payload = sim._pick_update("add")
            if kind != "add":
                break
            assert payload.pid not in existing
            assert payload.pid not in minted
            minted.add(payload.pid)
            sim._apply_update(sim._process, kind, payload)

    def test_add_then_delete_round_trip(self, pool):
        sim = DynamicSimulation(
            pool,
            initial_count=len(pool) // 2,
            rng=random.Random(3),
            cost_samples=10,
        )
        live_before = set(sim._live)
        kind, payload = sim._pick_update("add")
        sim._apply_update(sim._process, kind, payload)
        assert payload.pid in sim._live
        sim._apply_update(sim._process, "delete", payload.pid)
        assert set(sim._live) == live_before


class TestClassifyMany:
    def test_matches_single_classify(self, internet2_classifier):
        rng = random.Random(4)
        trace = uniform_over_atoms(internet2_classifier.universe, 100, rng)
        batch = internet2_classifier.tree.classify_many(trace.headers)
        singles = [internet2_classifier.tree.classify(h) for h in trace.headers]
        assert batch == singles

    def test_empty_batch(self, internet2_classifier):
        assert internet2_classifier.tree.classify_many([]) == []
