"""Unit tests for matches and rules."""

import pytest

from repro.headerspace.fields import dst_ip_layout, five_tuple_layout, parse_ipv4
from repro.headerspace.header import Packet
from repro.network.rules import DROP, AclRule, FieldMatch, ForwardingRule, Match


class TestFieldMatch:
    def test_negative_prefix_rejected(self):
        with pytest.raises(ValueError):
            FieldMatch("dst_ip", 0, -1)

    def test_describe_ip(self):
        fm = FieldMatch("dst_ip", parse_ipv4("10.0.0.0"), 8)
        assert fm.describe() == "dst_ip=10.0.0.0/8"

    def test_describe_plain(self):
        assert FieldMatch("dst_port", 80, 16).describe() == "dst_port=80/16"


class TestMatch:
    def test_any_matches_everything(self):
        layout = dst_ip_layout()
        match = Match.any()
        assert match.is_any
        for value in (0, 1, (1 << 32) - 1):
            assert match.matches(Packet(layout, value))

    def test_prefix_matching(self):
        layout = dst_ip_layout()
        match = Match.prefix("dst_ip", parse_ipv4("10.1.0.0"), 16)
        assert match.matches(Packet.of(layout, dst_ip="10.1.200.7"))
        assert not match.matches(Packet.of(layout, dst_ip="10.2.0.1"))

    def test_exact_matching(self):
        layout = five_tuple_layout()
        match = Match.exact(layout, dst_port=80, proto=6)
        assert match.matches(Packet.of(layout, dst_port=80, proto=6))
        assert not match.matches(Packet.of(layout, dst_port=81, proto=6))

    def test_with_prefix_is_pure(self):
        base = Match.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8)
        extended = base.with_prefix("src_ip", parse_ipv4("10.9.0.0"), 16)
        assert base.constraint_for("src_ip") is None
        assert extended.constraint_for("src_ip") is not None

    def test_literals_agree_with_matches(self):
        layout = five_tuple_layout()
        match = Match.prefix("dst_ip", parse_ipv4("171.64.0.0"), 14).with_prefix(
            "dst_port", 23, 16
        )
        literals = match.to_literals(layout)
        packet = Packet.of(layout, dst_ip="171.65.3.4", dst_port=23)
        width = layout.total_width
        for var, polarity in literals.items():
            assert bool((packet.value >> (width - 1 - var)) & 1) == polarity
        assert match.matches(packet)

    def test_wildcard_agrees_with_matches(self):
        layout = five_tuple_layout()
        match = Match.prefix("dst_ip", parse_ipv4("10.2.0.0"), 16)
        wildcard = match.to_wildcard(layout)
        inside = Packet.of(layout, dst_ip="10.2.9.9", src_ip="1.2.3.4")
        outside = Packet.of(layout, dst_ip="10.3.0.0")
        assert wildcard.matches(inside.value)
        assert not wildcard.matches(outside.value)

    def test_equality_and_hash(self):
        a = Match.prefix("dst_ip", 10 << 24, 8)
        b = Match.prefix("dst_ip", 10 << 24, 8)
        c = Match.prefix("dst_ip", 11 << 24, 8)
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_repr(self):
        assert repr(Match.any()) == "Match(any)"
        assert "dst_ip=10.0.0.0/8" in repr(Match.prefix("dst_ip", 10 << 24, 8))


class TestForwardingRule:
    def test_drop_rule(self):
        rule = ForwardingRule(Match.any(), DROP, priority=0)
        assert rule.is_drop
        assert "DROP" in rule.describe()

    def test_multicast_out_ports(self):
        rule = ForwardingRule(Match.any(), ("p1", "p2"), priority=5)
        assert not rule.is_drop
        assert "p1,p2" in rule.describe()


class TestAclRule:
    def test_describe(self):
        assert AclRule(Match.any(), permit=True).describe().startswith("permit")
        assert AclRule(Match.any(), permit=False).describe().startswith("deny")
