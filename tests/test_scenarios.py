"""Scenario-registry tests: lookup contract, seeding, and the foundry.

The registry (:mod:`repro.datasets.registry`) is the one surface every
consumer (CLI, bench fixtures, ``bench_scenarios``) resolves workloads
through, so its contract is pinned here:

* every registered scenario round-trips -- network, layout, canonical
  update stream, JSON description;
* unknown names/params and badly-typed values fail with the exact typed
  error the CLI relays;
* one master seed determines everything: network, trace, and update
  stream replay bit-identically;
* the foundry scenarios do what they claim: the ACL corpus's atom count
  grows with overlap density, and the IPv6 scenario's classifier
  survives an artifact round-trip at 128-bit width.
"""

from __future__ import annotations

import json

import pytest

from repro.artifact import load_artifact, save_artifact
from repro.core.atomic import AtomicUniverse
from repro.core.classifier import APClassifier
from repro.datasets import (
    ScenarioError,
    derive_seed,
    get_scenario,
    list_scenarios,
)
from repro.network.dataplane import DataPlane

#: Every scenario the ISSUE requires the registry to serve.
EXPECTED = {
    "internet2",
    "stanford",
    "toy",
    "fattree",
    "clos-ecmp",
    "acl-heavy",
    "ipv6-wan",
    "sdn-policy",
}


class TestRegistryRoundTrip:
    def test_catalog_is_complete(self):
        names = list_scenarios()
        assert EXPECTED <= set(names)
        assert len(names) >= 7
        assert names == sorted(names)  # stable listing order

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_every_scenario_round_trips(self, name):
        scenario = get_scenario(name)
        network = scenario.network()
        assert network.stats()["boxes"] > 0
        # The layout the workloads are generated against is the
        # network's own.
        assert scenario.layout is network.layout
        assert scenario.layout.field_names()
        # The canonical churn stream replays against the network it
        # came from: removals only ever touch inserted rules.
        inserted = set()
        for update in scenario.update_stream(12):
            key = (update.box, update.rule)
            if update.kind == "insert":
                inserted.add(key)
            else:
                assert key in inserted
                inserted.discard(key)
        # The description is the `repro scenarios` row: strict JSON,
        # params carrying their bound values and declared types.
        description = scenario.describe()
        json.dumps(description, allow_nan=False)
        assert description["name"] == name
        assert description["seed"] == scenario.seed
        for key, entry in description["params"].items():
            assert entry["value"] == scenario.params[key]
            assert type(entry["value"]).__name__ == entry["type"]

    def test_network_is_cached(self):
        scenario = get_scenario("toy")
        assert scenario.network() is scenario.network()

    def test_param_binding_overrides_default(self):
        scenario = get_scenario("acl-heavy", lists=3, overlap=0.25)
        assert scenario.params["lists"] == 3
        assert scenario.params["overlap"] == 0.25
        # Untouched params keep their defaults.
        assert scenario.params["rules_per_list"] == 10

    def test_string_params_coerce_like_the_cli(self):
        scenario = get_scenario("acl-heavy", lists="3", overlap="0.25")
        assert scenario.params["lists"] == 3
        assert scenario.params["overlap"] == 0.25


class TestErrorContract:
    def test_unknown_scenario_names_the_catalog(self):
        with pytest.raises(ScenarioError) as excinfo:
            get_scenario("internet3")
        message = str(excinfo.value)
        assert "unknown scenario 'internet3'" in message
        assert "internet2" in message  # the catalog is in the message

    def test_unknown_param_names_the_choices(self):
        with pytest.raises(ScenarioError) as excinfo:
            get_scenario("internet2", prefix_count=4)
        message = str(excinfo.value)
        assert "unknown param 'prefix_count'" in message
        assert "prefixes_per_router" in message
        assert "seed" in message  # seed is always accepted

    def test_badly_typed_value_is_rejected(self):
        with pytest.raises(ScenarioError, match="expects int"):
            get_scenario("internet2", prefixes_per_router="four")
        with pytest.raises(ScenarioError, match="expects int"):
            get_scenario("internet2", prefixes_per_router=2.5)
        with pytest.raises(ScenarioError, match="expects int"):
            get_scenario("internet2", prefixes_per_router=True)

    def test_factory_validation_bubbles_up(self):
        # Param values of the right type but outside the factory's
        # domain still fail loudly at network() time.
        with pytest.raises(ValueError):
            get_scenario("acl-heavy", lists=0).network()


class TestSeedDeterminism:
    def test_one_seed_determines_everything(self):
        """Same seed: bit-identical network, trace, and update stream."""
        first = get_scenario("internet2", prefixes_per_router=2, seed=99)
        second = get_scenario("internet2", prefixes_per_router=2, seed=99)

        box = sorted(first.network().boxes)[0]
        rules_a = [r.describe() for r in first.network().box(box).table]
        rules_b = [r.describe() for r in second.network().box(box).table]
        assert rules_a == rules_b

        classifier = APClassifier.build(first.network())
        trace_a = first.trace(classifier.universe, 200)
        trace_b = second.trace(classifier.universe, 200)
        assert trace_a.headers == trace_b.headers
        assert trace_a.atom_ids == trace_b.atom_ids

        stream_a = first.update_stream(40)
        stream_b = second.update_stream(40)
        assert [
            (u.kind, u.box, u.rule.describe()) for u in stream_a
        ] == [(u.kind, u.box, u.rule.describe()) for u in stream_b]

    def test_different_seeds_differ(self):
        # The acl-heavy forwarding skeleton is fixed; the seed owns the
        # ACL bodies, so different seeds must draw different ACLs.
        def acls(network):
            return [
                (name, port, rule.describe())
                for name in sorted(network.boxes)
                for port, acl in sorted(network.box(name).output_acls.items())
                for rule in acl
            ]

        a = get_scenario("acl-heavy", lists=4, seed=1).network()
        b = get_scenario("acl-heavy", lists=4, seed=2).network()
        assert acls(a) != acls(b)

    def test_purpose_derived_rngs_are_independent(self):
        # Drawing the update stream first must not perturb the trace.
        scenario = get_scenario("internet2", prefixes_per_router=2, seed=5)
        classifier = APClassifier.build(scenario.network())
        before = scenario.trace(classifier.universe, 100).headers
        scenario.update_stream(50)
        assert scenario.trace(classifier.universe, 100).headers == before

    def test_derive_seed_is_stable_and_purpose_split(self):
        assert derive_seed(7, "trace") == derive_seed(7, "trace")
        assert derive_seed(7, "trace") != derive_seed(7, "updates")
        assert derive_seed(7, "trace") != derive_seed(8, "trace")


class TestAclOverlapMonotonicity:
    def test_atom_count_grows_with_overlap_density(self):
        """The overlap knob is the Hazelhurst dial: denser overlap among
        the hot-region rules means more distinct membership vectors,
        hence more atoms, without changing the rule count."""
        counts = {}
        for overlap in (0.0, 0.5, 1.0):
            scenario = get_scenario(
                "acl-heavy",
                lists=4,
                rules_per_list=6,
                overlap=overlap,
                seed=7,
            )
            dataplane = DataPlane(scenario.network())
            universe = AtomicUniverse.compute(
                dataplane.manager, dataplane.predicates()
            )
            counts[overlap] = universe.atom_count
        assert counts[0.0] < counts[0.5] < counts[1.0]


class TestIpv6ArtifactRoundTrip:
    def test_ipv6_scenario_survives_artifact_round_trip(self, tmp_path):
        scenario = get_scenario("ipv6-wan", prefixes_per_router=1, seed=3)
        assert scenario.layout.total_width == 128
        original = APClassifier.build(scenario.network())
        original.compile()

        path = tmp_path / "ipv6_wan.apc"
        save_artifact(original, path)
        restored = load_artifact(path, deep_verify=True)

        headers = scenario.trace(original.universe, 200).headers
        assert [restored.tree.classify(h) for h in headers] == [
            original.tree.classify(h) for h in headers
        ]
