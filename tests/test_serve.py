"""Online query service: micro-batching, admission, degradation paths.

The correctness bar for the serving layer is strict: a query served
*during* an update or a reconstruction swap must return exactly what a
quiesced classifier would return for the same data plane state.  These
tests pin that, plus the bounded-admission accounting (sheds, timeouts,
backpressure) and clean cancellation (no orphan tasks).
"""

from __future__ import annotations

import asyncio
import json
import random
import threading

import pytest

from repro.core.classifier import APClassifier
from repro.datasets import internet2_like, toy_network, uniform_over_atoms
from repro.headerspace.fields import parse_ipv4
from repro.network.rules import ForwardingRule, Match
from repro.obs import Recorder, validate_snapshot
from repro.serve import QueryService, QueryShed, ServiceClosed, start_tcp_server


def run(coro):
    return asyncio.run(coro)


def behavior_key(behavior):
    """Generation-independent fingerprint of a behavior (atom ids are not
    comparable across reconstructions; paths and verdicts are)."""
    return (
        tuple(tuple(path) for path in behavior.paths()),
        tuple(sorted(behavior.delivered_hosts())),
        tuple(sorted(behavior.drops())),
    )


@pytest.fixture(scope="module")
def toy_classifier():
    return APClassifier.build(toy_network())


def sample_headers(classifier, count, seed=3):
    trace = uniform_over_atoms(classifier.universe, count, random.Random(seed))
    return list(trace.headers)


class TestBasicServing:
    def test_classify_matches_direct(self, toy_classifier):
        headers = sample_headers(toy_classifier, 64)
        expected = toy_classifier.classify_batch(headers)

        async def scenario():
            async with QueryService(toy_classifier, max_delay_s=0) as service:
                return await asyncio.gather(
                    *(service.classify(h) for h in headers)
                )

        assert run(scenario()) == expected

    def test_query_matches_direct(self, toy_classifier):
        headers = sample_headers(toy_classifier, 16)
        expected = [
            behavior_key(toy_classifier.query(h, "b1")) for h in headers
        ]

        async def scenario():
            async with QueryService(toy_classifier, max_delay_s=0) as service:
                behaviors = await asyncio.gather(
                    *(service.query(h, "b1") for h in headers)
                )
            return [behavior_key(b) for b in behaviors]

        assert run(scenario()) == expected

    def test_concurrent_requests_coalesce(self, toy_classifier):
        headers = sample_headers(toy_classifier, 200)

        async def scenario():
            service = QueryService(
                toy_classifier, max_batch=64, max_delay_s=0.01
            )
            async with service:
                await asyncio.gather(*(service.classify(h) for h in headers))
            return service

        service = run(scenario())
        counters = service.counters
        assert counters.served == len(headers)
        assert counters.batches < len(headers)  # coalescing happened
        assert max(counters.batch_size_histogram) > 1
        assert counters.batched_requests == counters.served

    def test_not_running_raises(self, toy_classifier):
        async def scenario():
            service = QueryService(toy_classifier)
            with pytest.raises(ServiceClosed):
                await service.classify(0)

        run(scenario())

    def test_stop_fails_pending(self, toy_classifier):
        async def scenario():
            # A huge delay budget parks the request in the dispatcher's
            # coalescing window; stop() must fail it, not leak it.
            service = QueryService(
                toy_classifier, max_batch=64, max_delay_s=30.0
            )
            await service.start()
            task = asyncio.ensure_future(service.classify(0))
            await asyncio.sleep(0.01)
            await service.stop()
            with pytest.raises(ServiceClosed):
                await task

        run(scenario())

    def test_stop_fails_batch_parked_at_swap_lock(self, toy_classifier):
        async def scenario():
            # Park the dispatcher *after* it pops a batch: a held write
            # lock (an in-flight update/reconstruct swap) blocks the
            # read side.  stop() must fail that popped batch too -- its
            # requests are no longer in the queue for the drain to see.
            service = QueryService(toy_classifier, max_delay_s=0)
            await service.start()
            async with service._swap_lock.write():
                task = asyncio.ensure_future(service.classify(0))
                await asyncio.sleep(0.01)  # batch popped, parked at read()
                await service.stop()
                with pytest.raises(ServiceClosed):
                    await asyncio.wait_for(task, 5.0)

        run(scenario())

    def test_metrics_shape(self, toy_classifier):
        async def scenario():
            async with QueryService(toy_classifier, max_delay_s=0) as service:
                await service.classify(0)
                return service.metrics()

        metrics = run(scenario())
        assert metrics["served"] == 1
        assert metrics["queue_depth"] == 0
        assert metrics["running"] is True
        assert metrics["compiled_fresh"] is True
        assert metrics["latency_s"]["p99"] >= metrics["latency_s"]["p50"] >= 0


class TestAdmission:
    def test_shed_policy_counts_and_raises(self, toy_classifier):
        async def scenario():
            service = QueryService(
                toy_classifier,
                max_delay_s=0.05,
                queue_limit=4,
                overflow="shed",
            )
            async with service:
                # All ten admissions run before the dispatcher wakes:
                # tasks are scheduled in creation order, ahead of the
                # event-triggered dispatcher resumption.  Headers are
                # distinct -- duplicates would coalesce onto the queued
                # request instead of contending for admission slots.
                results = await asyncio.gather(
                    *(service.classify(h) for h in range(10)),
                    return_exceptions=True,
                )
            served = [r for r in results if isinstance(r, int)]
            shed = [r for r in results if isinstance(r, QueryShed)]
            return service, served, shed

        service, served, shed = run(scenario())
        assert len(served) == 4
        assert len(shed) == 6
        assert service.counters.shed == 6
        assert service.counters.served == 4
        assert service.counters.queue_depth_max == 4

    def test_wait_policy_backpressures_and_serves_all(self, toy_classifier):
        async def scenario():
            service = QueryService(
                toy_classifier,
                max_delay_s=0,
                queue_limit=4,
                overflow="wait",
            )
            async with service:
                results = await asyncio.gather(
                    *(service.classify(h) for h in range(20))
                )
            return service, results

        service, results = run(scenario())
        assert len(results) == 20
        assert service.counters.shed == 0
        assert service.counters.served == 20
        assert service.counters.queue_depth_max <= 4

    def test_timeout_cancels_cleanly(self, toy_classifier):
        async def scenario():
            # The lone request sits in a 0.5 s coalescing window but
            # carries a 10 ms deadline: it must time out, be skipped by
            # the dispatcher, and leave no orphan task behind.
            service = QueryService(
                toy_classifier, max_batch=8, max_delay_s=0.5
            )
            async with service:
                with pytest.raises(asyncio.TimeoutError):
                    await service.classify(0, timeout=0.01)
                assert service.counters.timeouts == 1
                # The service is still healthy for the next caller.
                atom = await asyncio.wait_for(
                    service.classify(0, timeout=2.0), 5.0
                )
                assert atom == toy_classifier.classify(0)
            await asyncio.sleep(0)
            orphans = [
                task
                for task in asyncio.all_tasks()
                if task is not asyncio.current_task() and not task.done()
            ]
            assert orphans == []
            # The timed-out request was never counted as served, and its
            # classification work was skipped (only the healthy request's
            # singleton batch ran).
            assert service.counters.served == 1
            assert service.counters.batched_requests == 1

        run(scenario())


class TestDegradation:
    """Updates and reconstructions must never produce a wrong answer."""

    def test_stale_artifact_fallback_serves_exact_results(self):
        classifier = APClassifier.build(toy_network())
        recorder = Recorder()
        classifier.set_recorder(recorder)
        rule = ForwardingRule(
            Match.prefix("dst_ip", parse_ipv4("10.2.0.0"), 24), (), 24
        )

        async def scenario():
            async with QueryService(
                classifier, max_delay_s=0, recorder=recorder
            ) as service:
                assert classifier.compiled_fresh
                await service.insert_rule("b1", rule)
                # The artifact is stale now; queries degrade to the
                # interpreted tree but stay exact.
                assert not classifier.compiled_fresh
                dropped = await service.query(
                    parse_ipv4("10.2.0.77"), "b1"
                )
                assert dropped.delivered_hosts() == frozenset()
                await service.recompile()
                assert classifier.compiled_fresh
                recompiled = await service.query(
                    parse_ipv4("10.2.0.77"), "b1"
                )
                assert behavior_key(recompiled) == behavior_key(dropped)

        run(scenario())
        assert recorder.updates.stale_fallbacks > 0

    def test_recompile_after_updates_policy(self):
        classifier = APClassifier.build(toy_network())
        rule = ForwardingRule(
            Match.prefix("dst_ip", parse_ipv4("10.2.0.0"), 24), (), 24
        )

        async def scenario():
            async with QueryService(
                classifier, max_delay_s=0, recompile_after_updates=1
            ) as service:
                await service.insert_rule("b1", rule)
                # The policy recompiled inline: no degradation window.
                assert classifier.compiled_fresh

        run(scenario())

    def test_queries_during_reconstruction_match_quiesced(self):
        classifier = APClassifier.build(internet2_like())
        headers = sample_headers(classifier, 48)
        quiesced = {
            h: behavior_key(classifier.query(h, "SEAT")) for h in headers
        }
        gate = threading.Event()

        class GatedService(QueryService):
            def _rebuild(self, *args):
                gate.wait(timeout=30)
                return super()._rebuild(*args)

        async def scenario():
            service = GatedService(classifier, max_delay_s=0.002)
            async with service:
                recon = asyncio.ensure_future(service.reconstruct())
                await asyncio.sleep(0.01)
                assert service.reconstructing
                # Mid-rebuild queries: served on the old generation.
                during = await asyncio.gather(
                    *(service.query(h, "SEAT") for h in headers)
                )
                gate.set()
                await recon
                # Post-swap queries: served on the rebuilt generation.
                after = await asyncio.gather(
                    *(service.query(h, "SEAT") for h in headers)
                )
            return service, during, after

        service, during, after = run(scenario())
        for h, behavior in zip(headers, during):
            assert behavior_key(behavior) == quiesced[h]
        for h, behavior in zip(headers, after):
            assert behavior_key(behavior) == quiesced[h]
        assert service.counters.swaps == 1

    def test_updates_during_reconstruction_are_replayed(self):
        classifier = APClassifier.build(toy_network())
        recorder = Recorder()
        gate = threading.Event()
        rule = ForwardingRule(
            Match.prefix("dst_ip", parse_ipv4("10.2.0.0"), 24), (), 24
        )
        probe = parse_ipv4("10.2.0.9")

        class GatedService(QueryService):
            def _rebuild(self, *args):
                gate.wait(timeout=30)
                return super()._rebuild(*args)

        async def scenario():
            service = GatedService(
                classifier, max_delay_s=0, recorder=recorder
            )
            async with service:
                recon = asyncio.ensure_future(service.reconstruct())
                await asyncio.sleep(0.01)
                assert service.reconstructing
                # This update postdates the rebuild's snapshot: it must
                # be journaled and replayed before the swap.
                await service.insert_rule("b1", rule)
                mid = await service.query(probe, "b1")
                assert mid.delivered_hosts() == frozenset()
                gate.set()
                await recon
                post = await service.query(probe, "b1")
            return mid, post

        mid, post = run(scenario())
        assert behavior_key(post) == behavior_key(mid)
        assert recorder.updates.replayed >= 1
        assert recorder.serve.swaps == 1
        # Ground truth: a classifier built fresh from the updated
        # network agrees with what was served after the swap.
        reference = APClassifier.build(classifier.dataplane.network)
        assert behavior_key(reference.query(probe, "b1")) == behavior_key(post)

    def test_rebuild_never_touches_canonical_manager(self):
        # The executor-thread half of reconstruct() must work in a
        # private manager: the canonical one keeps taking updates on the
        # loop thread mid-rebuild and has no locking, so any node or
        # cache it minted from the rebuild thread would be a data race.
        from repro.bdd.serialize import dump_functions
        from repro.serve.service import _rebuild_isolated

        classifier = APClassifier.build(toy_network())
        manager = classifier.dataplane.manager
        snapshot = classifier.dataplane.predicates()
        pids = [labeled.pid for labeled in snapshot]
        dumped = dump_functions([labeled.fn for labeled in snapshot])
        before = manager.cache_stats()
        payload = _rebuild_isolated(pids, dumped, classifier.strategy)
        assert manager.cache_stats() == before
        assert payload["universe"]["pids"] == pids

    def test_updates_racing_live_rebuild_stay_exact(self):
        # No gate here on purpose: the rebuild thread really runs while
        # the loop thread mutates the canonical manager via updates.
        classifier = APClassifier.build(internet2_like())
        rule = ForwardingRule(
            Match.prefix("dst_ip", parse_ipv4("10.2.0.0"), 24), (), 24
        )
        probe = parse_ipv4("10.2.0.9")

        async def scenario():
            async with QueryService(classifier, max_delay_s=0) as service:
                recon = asyncio.ensure_future(service.reconstruct())
                flips = 0
                while not recon.done() and flips < 50:
                    await service.insert_rule("SEAT", rule)
                    await service.remove_rule("SEAT", rule)
                    flips += 1
                    await asyncio.sleep(0)
                await recon
                return await service.query(probe, "SEAT")

        post = run(scenario())
        reference = APClassifier.build(classifier.dataplane.network)
        assert behavior_key(reference.query(probe, "SEAT")) == behavior_key(
            post
        )

    def test_reconstruct_rejects_reentry(self, toy_classifier):
        gate = threading.Event()

        class GatedService(QueryService):
            def _rebuild(self, *args):
                gate.wait(timeout=30)
                return super()._rebuild(*args)

        async def scenario():
            service = GatedService(toy_classifier, max_delay_s=0)
            async with service:
                recon = asyncio.ensure_future(service.reconstruct())
                await asyncio.sleep(0.01)
                with pytest.raises(RuntimeError):
                    await service.reconstruct()
                gate.set()
                await recon

        run(scenario())


class TestObservability:
    def test_recorder_snapshot_validates(self):
        classifier = APClassifier.build(toy_network())
        recorder = Recorder()
        classifier.set_recorder(recorder)
        headers = sample_headers(classifier, 32)

        async def scenario():
            async with QueryService(
                classifier, max_delay_s=0.005, recorder=recorder
            ) as service:
                await asyncio.gather(*(service.classify(h) for h in headers))
                await service.reconstruct()
                await asyncio.gather(*(service.classify(h) for h in headers))

        run(scenario())
        snapshot = validate_snapshot(recorder.snapshot())
        serve = snapshot["serve"]
        assert serve["served"] == 2 * len(headers)
        assert serve["swaps"] == 1
        assert serve["latency_s"]["count"] == serve["served"]
        assert sum(serve["batch_size_histogram"].values()) == serve["batches"]
        json.dumps(snapshot, allow_nan=False)  # strict-JSON round trip


class TestTCP:
    def test_wire_protocol(self):
        classifier = APClassifier.build(toy_network())

        async def scenario():
            service = QueryService(classifier, max_delay_s=0)
            async with service:
                server = await start_tcp_server(service)
                port = server.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )

                async def ask(payload):
                    writer.write((json.dumps(payload) + "\n").encode())
                    await writer.drain()
                    return json.loads(await reader.readline())

                responses = {
                    "ping": await ask({"op": "ping"}),
                    "classify_header": await ask(
                        {"op": "classify", "header": parse_ipv4("10.2.0.1")}
                    ),
                    "classify_packet": await ask(
                        {"op": "classify", "packet": {"dst_ip": "10.2.0.1"}}
                    ),
                    "query": await ask(
                        {
                            "op": "query",
                            "packet": {"dst_ip": "10.2.0.1"},
                            "ingress": "b1",
                        }
                    ),
                    "bad_ingress": await ask(
                        {
                            "op": "query",
                            "packet": {"dst_ip": "10.2.0.1"},
                            "ingress": "nope",
                        }
                    ),
                    "bad_op": await ask({"op": "frobnicate"}),
                    "bad_json": None,
                    "metrics": await ask({"op": "metrics"}),
                }
                writer.write(b"this is not json\n")
                await writer.drain()
                responses["bad_json"] = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                server.close()
                await server.wait_closed()
            return responses

        responses = run(scenario())
        assert responses["ping"] == {"ok": True, "pong": True}
        expected_atom = classifier.classify(parse_ipv4("10.2.0.1"))
        assert responses["classify_header"] == {"ok": True, "atom": expected_atom}
        assert responses["classify_packet"]["atom"] == expected_atom
        query = responses["query"]
        assert query["ok"] is True
        assert ["b1", "b2", "h2"] in query["paths"]
        assert query["delivered"] == ["h2"]
        assert responses["bad_ingress"]["ok"] is False
        assert responses["bad_op"]["ok"] is False
        assert "unknown op" in responses["bad_op"]["error"]
        assert responses["bad_json"]["ok"] is False
        metrics = responses["metrics"]["metrics"]
        assert metrics["served"] == 3  # two classifies + the good query
        assert metrics["running"] is True

    def test_unexpected_error_keeps_connection_alive(self):
        classifier = APClassifier.build(toy_network())

        async def scenario():
            service = QueryService(classifier, max_delay_s=0)
            async with service:
                async def boom(*args, **kwargs):
                    raise TypeError("boom")

                service.classify = boom  # surfaces through the future
                server = await start_tcp_server(service)
                port = server.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )

                async def ask(payload):
                    writer.write((json.dumps(payload) + "\n").encode())
                    await writer.drain()
                    return json.loads(await reader.readline())

                error = await ask({"op": "classify", "header": 1})
                pong = await ask({"op": "ping"})
                writer.close()
                await writer.wait_closed()
                server.close()
                await server.wait_closed()
            return error, pong

        error, pong = run(scenario())
        assert error == {"ok": False, "error": "TypeError: boom"}
        assert pong == {"ok": True, "pong": True}
