"""Hot-header result cache: hits, LRU bounds, generation safety.

The cache is only allowed to be fast: any event that can change what a
header classifies to -- a rule update through the service, a
reconstruction, a generation handoff, or an out-of-band tree mutation
(the staleness-fallback path) -- must retire every cached entry before
the next query can probe.  These tests poison the cache on purpose and
check the poison can never outlive the generation that wrote it.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core.classifier import APClassifier
from repro.datasets import toy_network, uniform_over_atoms
from repro.headerspace.fields import parse_ipv4
from repro.network.rules import ForwardingRule, Match
from repro.obs import Recorder, validate_snapshot
from repro.serve import QueryService, ResultCache


def run(coro):
    return asyncio.run(coro)


def fresh_classifier():
    return APClassifier.build(toy_network())


def sample_headers(classifier, count, seed=3):
    trace = uniform_over_atoms(classifier.universe, count, random.Random(seed))
    return list(trace.headers)


def staling_rule():
    return ForwardingRule(
        Match.prefix("dst_ip", parse_ipv4("10.2.0.0"), 24), (), 24
    )


class TestResultCacheUnit:
    def test_get_put_and_len(self):
        cache = ResultCache(4)
        assert cache.get(10) is None
        cache.put(10, 3)
        assert cache.get(10) == 3
        assert len(cache) == 1

    def test_lru_evicts_oldest(self):
        cache = ResultCache(2)
        cache.put(1, 11)
        cache.put(2, 22)
        cache.get(1)  # refresh: 2 is now the LRU entry
        cache.put(3, 33)
        assert cache.get(2) is None
        assert cache.get(1) == 11
        assert cache.get(3) == 33
        assert len(cache) == 2

    def test_reput_updates_without_evicting(self):
        cache = ResultCache(2)
        cache.put(1, 11)
        cache.put(2, 22)
        cache.put(1, 111)
        assert cache.get(1) == 111
        assert cache.get(2) == 22

    def test_invalidate_clears_and_bumps_generation(self):
        cache = ResultCache(4)
        cache.put(1, 11)
        generation = cache.generation
        cache.invalidate()
        assert cache.generation == generation + 1
        assert cache.get(1) is None
        assert len(cache) == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultCache(0)


class TestServeHits:
    def test_repeats_hit_and_answers_match_direct(self):
        classifier = fresh_classifier()
        headers = sample_headers(classifier, 64)
        expected = classifier.classify_batch(headers)

        async def scenario():
            async with QueryService(
                classifier, max_delay_s=0, cache_size=256
            ) as service:
                first = await asyncio.gather(
                    *(service.classify(h) for h in headers)
                )
                second = await asyncio.gather(
                    *(service.classify(h) for h in headers)
                )
                return first, second, service.counters, service.metrics()

        first, second, counters, metrics = run(scenario())
        assert first == expected
        assert second == expected
        # Every second-pass lookup was a synchronous hit.
        assert counters.cache_hits >= len(set(headers))
        assert metrics["result_cache"]["hits"] == counters.cache_hits
        assert metrics["result_cache"]["entries"] == len(set(headers))

    def test_zero_cache_size_disables_cleanly(self):
        classifier = fresh_classifier()
        header = sample_headers(classifier, 1)[0]

        async def scenario():
            async with QueryService(
                classifier, max_delay_s=0, cache_size=0
            ) as service:
                await service.classify(header)
                await service.classify(header)
                return service.counters, service.metrics()

        counters, metrics = run(scenario())
        assert counters.cache_hits == 0
        assert counters.cache_misses == 0
        assert metrics["result_cache"]["hit_rate"] == 0.0

    def test_negative_cache_size_is_loud(self):
        with pytest.raises(ValueError, match="cache_size"):
            QueryService(fresh_classifier(), cache_size=-1)

    def test_lru_bound_holds_under_serving(self):
        classifier = fresh_classifier()
        headers = sample_headers(classifier, 64)

        async def scenario():
            async with QueryService(
                classifier, max_delay_s=0, cache_size=8
            ) as service:
                for header in headers:
                    await service.classify(header)
                return service.metrics(), service.counters

        metrics, counters = run(scenario())
        assert metrics["result_cache"]["entries"] <= 8
        assert counters.cache_evictions > 0

    def test_behavior_queries_bypass_the_cache(self):
        classifier = fresh_classifier()
        header = sample_headers(classifier, 1)[0]

        async def scenario():
            async with QueryService(
                classifier, max_delay_s=0, cache_size=64
            ) as service:
                await service.query(header, "b1")
                await service.query(header, "b1")
                return service.counters, service.metrics()

        counters, metrics = run(scenario())
        assert counters.cache_hits == 0
        assert counters.cache_misses == 0
        assert metrics["result_cache"]["entries"] == 0


class TestCoalescing:
    def test_duplicate_inflight_requests_share_one_batch_slot(self):
        classifier = fresh_classifier()
        header = sample_headers(classifier, 1)[0]
        expected = classifier.tree.classify(header)

        async def scenario():
            async with QueryService(
                classifier, max_delay_s=0.01, cache_size=64
            ) as service:
                results = await asyncio.gather(
                    *(service.classify(header) for _ in range(16))
                )
                return results, service.counters

        results, counters = run(scenario())
        assert results == [expected] * 16
        # One leader took a queue slot; fifteen duplicates coalesced.
        assert counters.cache_coalesced == 15
        assert counters.batched_requests == 1
        assert counters.served == 16

    def test_coalescing_works_with_the_cache_disabled(self):
        classifier = fresh_classifier()
        header = sample_headers(classifier, 1)[0]

        async def scenario():
            async with QueryService(
                classifier, max_delay_s=0.01, cache_size=0
            ) as service:
                results = await asyncio.gather(
                    *(service.classify(header) for _ in range(8))
                )
                return results, service.counters

        results, counters = run(scenario())
        assert len(set(results)) == 1
        assert counters.cache_coalesced == 7
        assert counters.batched_requests == 1

    def test_waiter_timeout_leaves_the_shared_request_running(self):
        """A coalesced waiter's timeout must not cancel the future under
        the leader (shield semantics): the leader still gets its answer
        and the result still lands in the cache."""
        classifier = fresh_classifier()
        header = sample_headers(classifier, 1)[0]
        expected = classifier.tree.classify(header)

        async def scenario():
            async with QueryService(
                classifier, max_delay_s=0, cache_size=64
            ) as service:
                # Hold the swap lock's write side so the dispatcher
                # cannot serve the batch while the waiter times out.
                async with service._swap_lock.write():
                    leader = asyncio.ensure_future(service.classify(header))
                    await asyncio.sleep(0.01)  # leader is queued
                    with pytest.raises(asyncio.TimeoutError):
                        await service.classify(header, timeout=0.01)
                answer = await leader
                return answer, service.counters

        answer, counters = run(scenario())
        assert answer == expected
        assert counters.timeouts == 1
        assert counters.cache_coalesced == 1


class TestLoopFairness:
    def test_hit_streaks_cannot_starve_other_tasks(self):
        """A hit answers without suspending, so an all-hits caller loop
        would monopolize the event loop forever if the service never
        yielded.  The periodic yield must let a concurrently scheduled
        task run within a bounded number of hits."""
        classifier = fresh_classifier()
        header = sample_headers(classifier, 1)[0]

        async def scenario():
            async with QueryService(
                classifier, max_delay_s=0, cache_size=64
            ) as service:
                await service.classify(header)  # prime the cache
                state = {"stop": False, "hits": 0}

                async def hot_loop():
                    # Bounded so a regression fails loudly instead of
                    # hanging the suite: without the yield, stop is
                    # never observed and the bound is exhausted.
                    while not state["stop"] and state["hits"] < 1_000_000:
                        await service.classify(header)
                        state["hits"] += 1

                async def stopper():
                    state["stop"] = True

                loop_task = asyncio.ensure_future(hot_loop())
                stop_task = asyncio.ensure_future(stopper())
                await asyncio.gather(loop_task, stop_task)
                return state["hits"]

        hits = run(scenario())
        assert hits < 10_000


class TestInvalidation:
    def test_rule_update_retires_cached_generation(self):
        classifier = fresh_classifier()
        headers = sample_headers(classifier, 16)

        async def scenario():
            async with QueryService(
                classifier, max_delay_s=0, cache_size=64
            ) as service:
                for header in headers:
                    await service.classify(header)
                generation = service._cache.generation
                await service.insert_rule("b1", staling_rule())
                assert service._cache.generation == generation + 1
                assert len(service._cache) == 0
                # Post-update answers come from the (stale-fallback)
                # interpreted tree, not the retired cache.
                answers = [await service.classify(h) for h in headers]
                return answers, service.counters

        answers, counters = run(scenario())
        assert answers == classifier.classify_batch(headers)
        assert counters.cache_invalidations >= 1

    def test_adopt_generation_never_serves_pre_swap_atom_id(self):
        classifier = fresh_classifier()
        header = sample_headers(classifier, 1)[0]
        replacement = fresh_classifier()
        truth = replacement.tree.classify(header)
        poison = truth + 1000  # an atom id no generation ever assigned

        async def scenario():
            async with QueryService(
                classifier, max_delay_s=0, cache_size=64
            ) as service:
                await service.classify(header)
                # Plant a poisoned pre-swap entry and prove it is live.
                service._cache.put(header, poison)
                assert await service.classify(header) == poison
                await service.adopt_generation(replacement)
                post_swap = await service.classify(header)
                return post_swap, service.counters

        post_swap, counters = run(scenario())
        assert post_swap == truth
        assert post_swap != poison
        assert counters.cache_invalidations >= 1
        assert counters.swaps == 1

    def test_reconstruct_retires_cached_generation(self):
        classifier = fresh_classifier()
        header = sample_headers(classifier, 1)[0]

        async def scenario():
            async with QueryService(
                classifier, max_delay_s=0, cache_size=64
            ) as service:
                await service.insert_rule("b1", staling_rule())
                await service.classify(header)
                service._cache.put(header, 424242)
                assert await service.classify(header) == 424242
                await service.reconstruct()
                post_swap = await service.classify(header)
                return post_swap, service.counters

        post_swap, counters = run(scenario())
        assert post_swap != 424242
        assert post_swap == classifier.tree.classify(header)
        assert counters.swaps == 1

    def test_out_of_band_mutation_invalidates_via_staleness_stamp(self):
        """The staleness-fallback case: the tree changes behind the
        service's back (no insert_rule/adopt/reconstruct call), so only
        the tree-version stamp can catch it -- and it must, before a
        single post-mutation query is answered from the cache."""
        classifier = fresh_classifier()
        header = sample_headers(classifier, 1)[0]

        async def scenario():
            async with QueryService(
                classifier, max_delay_s=0, cache_size=64
            ) as service:
                await service.classify(header)
                service._cache.put(header, 515151)
                assert await service.classify(header) == 515151
                # Mutate the shared classifier directly: the service's
                # eager invalidation hooks never run.
                classifier.insert_rule("b1", staling_rule())
                invalidations = service.counters.cache_invalidations
                answer = await service.classify(header)
                return answer, invalidations, service.counters

        answer, before, counters = run(scenario())
        assert answer != 515151
        assert answer == classifier.tree.classify(header)
        assert counters.cache_invalidations == before + 1


class TestObservability:
    def test_snapshot_serve_section_carries_cache_counters(self):
        classifier = fresh_classifier()
        recorder = Recorder()
        classifier.set_recorder(recorder)
        headers = sample_headers(classifier, 8)

        async def scenario():
            async with QueryService(
                classifier,
                max_delay_s=0,
                cache_size=64,
                recorder=recorder,
            ) as service:
                for _ in range(2):
                    for header in headers:
                        await service.classify(header)
                await service.insert_rule("b1", staling_rule())

        run(scenario())
        snapshot = validate_snapshot(recorder.snapshot())
        assert snapshot["schema"] == "repro.obs.snapshot/9"
        section = snapshot["serve"]["result_cache"]
        assert section["hits"] >= len(set(headers))
        assert section["invalidations"] >= 1
        assert section["coalesced"] >= 0
        assert 0.0 < section["hit_rate"] <= 1.0
