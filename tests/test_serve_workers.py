"""Multi-worker serving: shared-memory pool, handoff, CLI liveness.

Workers are real OS processes mapping one shared artifact, so these
tests exercise the full path: fork, SO_REUSEPORT accept, newline-JSON
round trips, generation handoff acks, and clean teardown.  Kept small --
the pool's value is parallelism, but its *correctness* contract is that
every worker answers exactly like the classifier that was published.
"""

from __future__ import annotations

import json
import os
import random
import socket
import subprocess
import sys

import pytest

from repro.core.classifier import APClassifier
from repro.datasets import internet2_like, random_headers, rule_update_stream, toy_network
from repro.obs import Recorder
from repro.serve import ServeWorkerPool, closed_loop_qps

TIMEOUT_S = 10.0


def ask(host, port, request: dict) -> dict:
    with socket.create_connection((host, port), timeout=TIMEOUT_S) as sock:
        sock.sendall((json.dumps(request) + "\n").encode())
        line = b""
        while not line.endswith(b"\n"):
            chunk = sock.recv(4096)
            if not chunk:
                break
            line += chunk
    return json.loads(line)


@pytest.fixture(scope="module")
def toy_classifier():
    return APClassifier.build(toy_network())


class TestPool:
    def test_round_trip_matches_direct(self, toy_classifier):
        rng = random.Random(5)
        headers = random_headers(toy_classifier.dataplane.layout, 32, rng)
        expected = [toy_classifier.tree.classify(h) for h in headers]
        with ServeWorkerPool(toy_classifier, workers=2) as pool:
            assert ask("127.0.0.1", pool.port, {"op": "ping"}) == {
                "ok": True,
                "pong": True,
            }
            for header, atom in zip(headers, expected):
                response = ask(
                    "127.0.0.1", pool.port, {"op": "classify", "header": header}
                )
                assert response == {"ok": True, "atom": atom}

    def test_generation_handoff(self):
        network = internet2_like(prefixes_per_router=1)
        classifier = APClassifier.build(network)
        rng = random.Random(2)
        headers = random_headers(classifier.dataplane.layout, 48, rng)
        with ServeWorkerPool(classifier, workers=2) as pool:
            for update in rule_update_stream(network, 8, rng):
                if update.kind == "insert":
                    classifier.insert_rule(update.box, update.rule)
                else:
                    classifier.remove_rule(update.box, update.rule)
            pool.publish(classifier)
            expected = [classifier.tree.classify(h) for h in headers]
            got = [
                ask("127.0.0.1", pool.port, {"op": "classify", "header": h})["atom"]
                for h in headers
            ]
            assert got == expected

    def test_recorder_counts_workers_and_generations(self, toy_classifier):
        recorder = Recorder()
        pool = ServeWorkerPool(toy_classifier, workers=2, recorder=recorder)
        with pool:
            pool.publish(toy_classifier)
        assert recorder.serve.workers == 2
        assert recorder.serve.generations == 1

    def test_stop_is_idempotent(self, toy_classifier):
        pool = ServeWorkerPool(toy_classifier, workers=1)
        pool.start()
        pool.stop()
        pool.stop()

    def test_closed_loop_driver(self, toy_classifier):
        rng = random.Random(9)
        headers = random_headers(toy_classifier.dataplane.layout, 16, rng)
        with ServeWorkerPool(toy_classifier, workers=2) as pool:
            stats = closed_loop_qps(
                "127.0.0.1", pool.port, headers, connections=2, duration_s=0.3
            )
        assert stats["responses"] > 0
        assert stats["qps"] > 0

    def test_rejects_bad_worker_count(self, toy_classifier):
        with pytest.raises(ValueError):
            ServeWorkerPool(toy_classifier, workers=0)


class TestCLI:
    def test_serve_workers_liveness(self, tmp_path):
        """`repro serve --serve-workers 2` answers over TCP."""
        port = _free_port()
        env = dict(os.environ, PYTHONPATH="src")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--dataset",
                "toy",
                "--port",
                str(port),
                "--serve-workers",
                "2",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            _wait_for_port("127.0.0.1", port)
            assert ask("127.0.0.1", port, {"op": "ping"})["ok"] is True
            response = ask(
                "127.0.0.1", port, {"op": "classify", "packet": {"dst_ip": "10.2.0.1"}}
            )
            assert response["ok"] is True
        finally:
            process.terminate()
            try:
                process.wait(timeout=TIMEOUT_S)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=TIMEOUT_S)


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _wait_for_port(host: str, port: int, timeout_s: float = 30.0) -> None:
    import time

    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            with socket.create_connection((host, port), timeout=1.0):
                return
        except OSError:
            time.sleep(0.1)
    raise TimeoutError(f"server on {host}:{port} never came up")
