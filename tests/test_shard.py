"""Sharded serving: slices, framed protocol, router, cluster handoff.

The correctness bar is exactness: routing a header through the tree
prefix to a shard slice must answer bit-identically to the single-node
classifier, for every shard count and prefix depth, before, during,
and after a generation handoff (a batch answers entirely from one
generation, never mixed), and across replica fail-over.
"""

from __future__ import annotations

import asyncio
import json
import random

import pytest

from repro.artifact import (
    load_shard,
    load_shard_buffer,
    make_shard_plan,
    shard_artifact_bytes,
    write_shard_split,
)
from repro.core.classifier import APClassifier
from repro.core.compiled import extract_prefix, prefix_depth_for
from repro.datasets import (
    internet2_like,
    random_headers,
    rule_update_stream,
    toy_network,
    uniform_over_atoms,
)
from repro.serve import ShardCluster, ShardRouter, proto

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def toy_classifier():
    return APClassifier.build(toy_network())


@pytest.fixture(scope="module")
def i2_classifier():
    return APClassifier.build(internet2_like(prefixes_per_router=1))


def sample_headers(classifier, count, seed=3):
    rng = random.Random(seed)
    trace = uniform_over_atoms(classifier.universe, count, rng)
    # Mix in uniform-random headers so the miss-everything region (the
    # overwhelming majority of header space) is exercised too.
    extra = random_headers(classifier.dataplane.layout, max(4, count // 4), rng)
    return list(trace.headers) + list(extra)


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------


class TestProto:
    def test_frame_round_trip(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(proto.pack_frame(proto.PING))
            reader.feed_data(
                proto.pack_frame(proto.CLASSIFY, proto.encode_classify([1, 2]))
            )
            reader.feed_eof()
            first = await proto.read_frame(reader)
            second = await proto.read_frame(reader)
            return first, second

        (t1, p1), (t2, p2) = run(scenario())
        assert (t1, p1) == (proto.PING, b"")
        assert t2 == proto.CLASSIFY
        headers, width = proto.decode_classify(p2)
        assert [int(h) for h in headers] == [1, 2] and width == 1

    def test_bad_magic_and_oversize(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\x00\x00\x00\x00\x00\x00")
            with pytest.raises(proto.FrameError):
                await proto.read_frame(reader)
            reader2 = asyncio.StreamReader()
            import struct

            reader2.feed_data(struct.pack("<BIB", proto.FRAME_MAGIC, 1 << 30, 1))
            with pytest.raises(proto.FrameError):
                await proto.read_frame(reader2)

        run(scenario())

    def test_classify_codec_wide_headers(self):
        wide = [(1 << 100) | 5, (1 << 64) + 3, 7]
        payload = proto.encode_classify(wide, width=2)
        headers, width = proto.decode_classify(payload)
        assert width == 2
        if hasattr(headers, "shape"):
            got = [
                int(headers[i, 0]) | (int(headers[i, 1]) << 64)
                for i in range(len(wide))
            ]
        else:
            got = [int(h) for h in headers]
        assert got == wide

    def test_shard_classify_codec(self):
        payload = proto.encode_shard_classify(9, [0, 3, 1], [10, 20, 30])
        generation, frontiers, headers, width = proto.decode_shard_classify(
            payload
        )
        assert generation == 9 and width == 1
        assert [int(f) for f in frontiers] == [0, 3, 1]
        assert [int(h) for h in headers] == [10, 20, 30]
        with pytest.raises(proto.FrameError):
            proto.encode_shard_classify(1, [0], [1, 2])  # length mismatch

    def test_result_codecs(self):
        atoms = [int(a) for a in proto.decode_result(proto.encode_result([3, -1]))]
        assert atoms == [3, -1]
        generation, atoms = proto.decode_shard_result(
            proto.encode_shard_result(4, [7])
        )
        assert generation == 4 and [int(a) for a in atoms] == [7]
        with pytest.raises(proto.FrameError):
            proto.decode_result(b"\x05\x00\x00\x00" + b"\x00" * 8)


# ----------------------------------------------------------------------
# Plans and slices (in-process)
# ----------------------------------------------------------------------


def sharded_classify(plan, servings, headers):
    """Route + classify a batch through in-process shard servings."""
    frontiers = [plan.prefix.route(h) for h in headers]
    out = [0] * len(headers)
    groups: dict[int, list[int]] = {}
    for index, frontier in enumerate(frontiers):
        groups.setdefault(plan.assignment[frontier], []).append(index)
    for shard, indices in groups.items():
        atoms = servings[shard].classify_batch(
            [frontiers[i] for i in indices], [headers[i] for i in indices]
        )
        for index, atom in zip(indices, atoms):
            out[index] = int(atom)
    return out


class TestSlices:
    def test_plan_partitions_frontiers(self, toy_classifier):
        plan = make_shard_plan(toy_classifier, 3)
        owned = [frontier for group in plan.frontiers_of for frontier in group]
        assert sorted(owned) == list(range(plan.num_frontiers))
        assert plan.shards == 3
        assert len(plan.digest) == 16

    def test_slice_round_trip_bit_identical(self, toy_classifier):
        headers = sample_headers(toy_classifier, 96)
        expected = toy_classifier.classify_batch(headers)
        for shards in (1, 2, 4):
            plan = make_shard_plan(toy_classifier, shards)
            servings = [
                load_shard_buffer(shard_artifact_bytes(toy_classifier, plan, s))
                for s in range(shards)
            ]
            assert sharded_classify(plan, servings, headers) == expected

    def test_slice_rejects_foreign_frontier(self, toy_classifier):
        plan = make_shard_plan(toy_classifier, 2)
        serving = load_shard_buffer(
            shard_artifact_bytes(toy_classifier, plan, 0)
        )
        foreign = plan.frontiers_of[1][0]
        with pytest.raises(KeyError):
            serving.classify(foreign, 0)

    def test_slice_atoms_and_rsets_restricted(self, toy_classifier):
        plan = make_shard_plan(toy_classifier, 2)
        all_atoms = set()
        for shard in range(2):
            serving = load_shard_buffer(
                shard_artifact_bytes(toy_classifier, plan, shard)
            )
            atoms = set(serving.atom_ids())
            all_atoms |= atoms
            for pid, r_set in serving.r_sets().items():
                assert set(r_set) <= atoms
                full = set(toy_classifier.universe.r(pid))
                assert set(r_set) == full & atoms
        assert all_atoms == set(toy_classifier.universe.atom_ids())

    def test_write_and_load_split(self, toy_classifier, tmp_path):
        summary = write_shard_split(toy_classifier, tmp_path, shards=2)
        assert summary["shards"] == 2
        cluster = json.loads((tmp_path / "cluster.json").read_text())
        assert cluster["plan_digest"] == summary["plan_digest"]
        headers = sample_headers(toy_classifier, 48, seed=11)
        expected = toy_classifier.classify_batch(headers)
        plan = make_shard_plan(toy_classifier, 2)
        servings = [load_shard(tmp_path / name) for name in summary["files"][:2]]
        assert plan.digest == summary["plan_digest"]
        assert sharded_classify(plan, servings, headers) == expected

    def test_prefix_depth_for_tiny_tree(self, toy_classifier):
        depth = prefix_depth_for(toy_classifier.tree, 10_000)
        prefix = extract_prefix(toy_classifier.tree, depth)
        assert prefix.num_frontiers >= 1


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestShardedBitIdentity:
    """Property: sharded == single-node for any batch, shards, depth."""

    @pytest.fixture(scope="class")
    def setup(self, toy_classifier):
        population = sample_headers(toy_classifier, 64, seed=7)
        plans: dict = {}

        def plan_for(shards, depth):
            key = (shards, depth)
            if key not in plans:
                plan = make_shard_plan(toy_classifier, shards, depth=depth)
                servings = [
                    load_shard_buffer(
                        shard_artifact_bytes(toy_classifier, plan, s)
                    )
                    for s in range(shards)
                ]
                plans[key] = (plan, servings)
            return plans[key]

        return toy_classifier, population, plan_for

    @settings(max_examples=40, deadline=None)
    @given(
        shards=st.integers(min_value=1, max_value=4),
        depth=st.integers(min_value=1, max_value=6),
        picks=st.lists(st.integers(min_value=0, max_value=79), max_size=40),
    )
    def test_matches_single_node(self, setup, shards, depth, picks):
        classifier, population, plan_for = setup
        batch = [population[i] for i in picks]
        plan, servings = plan_for(shards, depth)
        assert sharded_classify(plan, servings, batch) == (
            classifier.classify_batch(batch)
        )


# ----------------------------------------------------------------------
# Cluster + router (real processes)
# ----------------------------------------------------------------------


class TestCluster:
    def test_router_matches_direct(self, i2_classifier):
        headers = sample_headers(i2_classifier, 128)
        expected = i2_classifier.classify_batch(headers)
        with ShardCluster(i2_classifier, shards=2, replicas=2) as cluster:
            assert len(cluster.endpoints) == 2
            assert all(len(group) == 2 for group in cluster.endpoints)

            async def scenario():
                router = ShardRouter.from_cluster(cluster)
                try:
                    batch = await router.classify_batch(headers)
                    singles = [await router.classify(h) for h in headers[:8]]
                    return batch, singles, dict(router.counters.shard_routed)
                finally:
                    await router.close()

            batch, singles, routed = run(scenario())
        assert batch == expected
        assert singles == expected[:8]
        # Atom-uniform traffic reaches both shards.
        assert len(routed) == 2

    def test_handoff_never_mixes_generations(self):
        network = internet2_like(prefixes_per_router=1)
        classifier = APClassifier.build(network)
        rng = random.Random(17)
        headers = sample_headers(classifier, 96, seed=17)
        updates = list(rule_update_stream(network, 10, rng))

        with ShardCluster(classifier, shards=2, replicas=1) as cluster:

            async def scenario():
                router = ShardRouter.from_cluster(cluster)
                allowed = {tuple(classifier.classify_batch(headers))}
                observed: list[tuple] = []
                done = asyncio.Event()

                async def load_loop():
                    while not done.is_set():
                        observed.append(
                            tuple(await router.classify_batch(headers))
                        )

                loop_task = asyncio.ensure_future(load_loop())
                try:
                    for start in range(0, len(updates), 5):
                        for update in updates[start : start + 5]:
                            if update.kind == "insert":
                                classifier.insert_rule(update.box, update.rule)
                            else:
                                classifier.remove_rule(update.box, update.rule)
                        generation = await cluster.publish_async(
                            classifier, router
                        )
                        assert router.generation == generation
                        allowed.add(tuple(classifier.classify_batch(headers)))
                        # A few batches strictly after the flip.
                        for _ in range(3):
                            observed.append(
                                tuple(await router.classify_batch(headers))
                            )
                finally:
                    done.set()
                    await loop_task
                    await router.close()
                return allowed, observed

            allowed, observed = run(scenario())
        assert len(allowed) >= 2, "updates must change some answers"
        assert observed, "load loop produced no batches"
        for batch in observed:
            # Every answer vector matches one generation wholesale:
            # a mixed batch would match none.
            assert batch in allowed
        final = tuple(classifier.classify_batch(headers))
        assert observed[-1] == final

    def test_failover_after_replica_kill(self, i2_classifier):
        headers = sample_headers(i2_classifier, 64, seed=23)
        expected = i2_classifier.classify_batch(headers)
        with ShardCluster(i2_classifier, shards=2, replicas=2) as cluster:

            async def scenario():
                router = ShardRouter.from_cluster(cluster)
                try:
                    warm = await router.classify_batch(headers)
                    cluster.kill_replica(0, 0)
                    cluster.kill_replica(1, 0)
                    # Enough batches that the rotor lands on the dead
                    # replicas and the router must fail over.
                    after = [
                        await router.classify_batch(headers) for _ in range(4)
                    ]
                    return warm, after, router.counters.shard_failovers
                finally:
                    await router.close()

            warm, after, failovers = run(scenario())
        assert warm == expected
        for batch in after:
            assert batch == expected
        assert failovers > 0

    def test_all_replicas_down_raises(self, toy_classifier):
        headers = sample_headers(toy_classifier, 16)
        with ShardCluster(toy_classifier, shards=1, replicas=1) as cluster:

            async def scenario():
                router = ShardRouter.from_cluster(cluster)
                try:
                    await router.classify_batch(headers)  # warm
                    cluster.kill_replica(0, 0)
                    with pytest.raises(ConnectionError):
                        await router.classify_batch(headers)
                    return router.counters.shard_retries
                finally:
                    await router.close()

            retries = run(scenario())
        assert retries > 0


# ----------------------------------------------------------------------
# Single-node TCP endpoint: framed shim + bounded lines + announce
# ----------------------------------------------------------------------


class TestTCPSatellites:
    def test_oversized_line_answers_and_survives(self, toy_classifier):
        from repro.serve import QueryService, start_tcp_server
        from repro.serve.tcp import MAX_LINE_BYTES

        async def scenario():
            service = QueryService(toy_classifier, max_delay_s=0)
            async with service:
                server = await start_tcp_server(service)
                port = server.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                writer.write(b"x" * (3 * MAX_LINE_BYTES) + b"\n")
                await writer.drain()
                oversized = json.loads(await reader.readline())
                writer.write(b'{"op": "ping"}\n')
                await writer.drain()
                pong = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
                server.close()
                await server.wait_closed()
            return oversized, pong

        oversized, pong = run(scenario())
        assert oversized == {"ok": False, "error": "request too large"}
        assert pong == {"ok": True, "pong": True}

    def test_framed_classify_matches_direct(self, toy_classifier):
        from repro.serve import QueryService, start_tcp_server

        headers = sample_headers(toy_classifier, 48, seed=5)
        expected = toy_classifier.classify_batch(headers)

        async def scenario():
            service = QueryService(toy_classifier, max_delay_s=0)
            async with service:
                server = await start_tcp_server(service)
                port = server.sockets[0].getsockname()[1]
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                writer.write(proto.pack_frame(proto.PING))
                await writer.drain()
                ftype, _payload = await proto.read_frame(reader)
                assert ftype == proto.PONG
                writer.write(
                    proto.pack_frame(
                        proto.CLASSIFY, proto.encode_classify(headers)
                    )
                )
                await writer.drain()
                ftype, payload = await proto.read_frame(reader)
                assert ftype == proto.RESULT
                atoms = [int(a) for a in proto.decode_result(payload)]
                # Unsupported type answers ERROR, connection survives.
                writer.write(proto.pack_frame(proto.SHARD_CLASSIFY, b""))
                await writer.drain()
                ftype, _payload = await proto.read_frame(reader)
                assert ftype == proto.ERROR
                writer.write(proto.pack_frame(proto.METRICS))
                await writer.drain()
                ftype, payload = await proto.read_frame(reader)
                assert ftype == proto.METRICS_RESULT
                metrics = json.loads(payload)
                writer.close()
                await writer.wait_closed()
                server.close()
                await server.wait_closed()
            return atoms, metrics

        atoms, metrics = run(scenario())
        assert atoms == expected
        assert metrics["frames"] == 1
        assert metrics["served"] == len(headers)

    def test_port_zero_announce_is_json(self, toy_classifier):
        from repro.serve import QueryService, serve_forever

        async def scenario():
            service = QueryService(toy_classifier, max_delay_s=0)
            lines: list[str] = []
            task = asyncio.ensure_future(
                serve_forever(service, "127.0.0.1", 0, announce=lines.append)
            )
            try:
                while not lines:
                    await asyncio.sleep(0.01)
                info = json.loads(lines[0])
                host, port = info["listening"]
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b'{"op": "ping"}\n')
                await writer.drain()
                pong = json.loads(await reader.readline())
                writer.close()
                await writer.wait_closed()
            finally:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
            return info, pong

        info, pong = run(scenario())
        assert info["listening"][0] == "127.0.0.1"
        assert isinstance(info["listening"][1], int)
        assert info["listening"][1] > 0
        assert pong == {"ok": True, "pong": True}


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestShardSplitCLI:
    def test_shard_split_writes_loadable_slices(self, tmp_path, capsys):
        from repro.cli import main

        out_dir = tmp_path / "split"
        assert main([
            "shard-split", "--dataset", "toy",
            "--out", str(out_dir), "--shards", "2",
        ]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["shards"] == 2
        serving = load_shard(out_dir / "shard-000.apc")
        assert serving.shard_id == 0 and serving.shards == 2
        cluster = json.loads((out_dir / "cluster.json").read_text())
        assert cluster["plan_digest"] == summary["plan_digest"]
