"""Tests for whole-classifier snapshots (warm restart)."""

from __future__ import annotations

import json
import random
import time

import pytest

from repro.core.classifier import APClassifier
from repro import persist
from repro.persist import SnapshotMismatch, classifier_from_json, classifier_to_json
from repro.datasets import internet2_like, stanford_like, toy_network


def assert_same_answers(original, restored, samples=60, seed=0):
    rng = random.Random(seed)
    width = original.dataplane.layout.total_width
    boxes = sorted(original.dataplane.network.boxes)
    for _ in range(samples):
        header = rng.getrandbits(width)
        ingress = rng.choice(boxes)
        a = original.query(header, ingress)
        b = restored.query(header, ingress)
        assert sorted(map(tuple, a.paths())) == sorted(map(tuple, b.paths()))
        assert a.delivered_hosts() == b.delivered_hosts()


class TestRoundTrip:
    def test_toy(self):
        original = APClassifier.build(toy_network())
        restored = classifier_from_json(classifier_to_json(original))
        assert restored.universe.atom_count == original.universe.atom_count
        assert restored.tree.average_depth() == pytest.approx(
            original.tree.average_depth()
        )
        assert_same_answers(original, restored)

    def test_internet2_like(self):
        original = APClassifier.build(internet2_like(prefixes_per_router=2))
        restored = classifier_from_json(classifier_to_json(original))
        assert_same_answers(original, restored)

    def test_stanford_like_with_acls(self):
        original = APClassifier.build(
            stanford_like(subnets_per_zone=2, host_ports_per_zone=1)
        )
        restored = classifier_from_json(classifier_to_json(original))
        assert_same_answers(original, restored, samples=30)

    def test_restored_classifier_is_updatable(self):
        from repro.headerspace.fields import parse_ipv4
        from repro.network.rules import ForwardingRule, Match

        original = APClassifier.build(internet2_like(prefixes_per_router=1))
        restored = classifier_from_json(classifier_to_json(original))
        rule = ForwardingRule(
            Match.prefix("dst_ip", parse_ipv4("10.1.0.0"), 24), ("to_SALT",), 24
        )
        restored.insert_rule("SEAT", rule)
        rng = random.Random(1)
        for _ in range(30):
            header = rng.getrandbits(32)
            assert restored.tree.classify(header) == restored.universe.classify(
                header
            )

    def test_load_is_faster_than_build(self):
        network = internet2_like(prefixes_per_router=14)
        started = time.perf_counter()
        original = APClassifier.build(network)
        build_s = time.perf_counter() - started
        text = classifier_to_json(original)
        started = time.perf_counter()
        classifier_from_json(text)
        load_s = time.perf_counter() - started
        # Warm restart skips atom computation + tree construction; it must
        # not be slower than a cold build (it is usually much faster).
        assert load_s < build_s * 1.5


class TestValidation:
    def test_version_checked(self):
        text = classifier_to_json(APClassifier.build(toy_network()))
        payload = json.loads(text)
        payload["version"] = 99
        with pytest.raises(ValueError):
            classifier_from_json(json.dumps(payload))

    def test_stale_snapshot_detected(self):
        """Snapshot taken, then the network changes: load must refuse."""
        from repro.headerspace.fields import parse_ipv4
        from repro.network.rules import ForwardingRule, Match

        classifier = APClassifier.build(toy_network())
        text = classifier_to_json(classifier)
        payload = json.loads(text)
        # Tamper: add a rule to the embedded network without updating the
        # stored predicates.
        payload["network"]["boxes"][0]["rules"].append(
            {
                "match": [{"field": "dst_ip", "value": parse_ipv4("10.9.0.0"),
                           "prefix_len": 16}],
                "out_ports": ["to_h1"],
                "priority": 16,
            }
        )
        with pytest.raises(SnapshotMismatch):
            classifier_from_json(json.dumps(payload))

    def test_corrupt_r_mapping_detected(self):
        classifier = APClassifier.build(toy_network())
        payload = json.loads(classifier_to_json(classifier))
        payload["predicates"][0]["r"] = [99999]
        with pytest.raises(SnapshotMismatch):
            classifier_from_json(json.dumps(payload))


class TestDeprecatedShims:
    def test_old_names_warn_and_still_work(self):
        from repro.core.snapshots import load_classifier, save_classifier

        original = APClassifier.build(toy_network())
        with pytest.warns(DeprecationWarning, match="use repro.persist"):
            text = save_classifier(original)
        with pytest.warns(DeprecationWarning, match="use repro.persist"):
            restored = load_classifier(text)
        assert_same_answers(original, restored, samples=20)


class TestPersistFacade:
    def test_json_file_round_trip(self, tmp_path):
        original = APClassifier.build(toy_network())
        path = tmp_path / "clf.json"
        written = persist.save(original, path, format="json")
        assert written == path.stat().st_size
        assert persist.detect_format(path) == "json"
        restored = persist.load(path)
        assert_same_answers(original, restored, samples=20)

    def test_artifact_file_round_trip(self, tmp_path):
        original = APClassifier.build(toy_network())
        path = tmp_path / "clf.apc"
        written = persist.save(original, path)
        assert written == path.stat().st_size
        assert persist.detect_format(path) == "artifact"
        restored = persist.load(path)
        assert_same_answers(original, restored, samples=20)

    def test_unknown_format_rejected(self, tmp_path):
        original = APClassifier.build(toy_network())
        with pytest.raises(ValueError, match="unknown persistence format"):
            persist.save(original, tmp_path / "x", format="pickle")
