"""Stateful property testing: the classifier under arbitrary operation
sequences.

A hypothesis state machine drives a live :class:`APClassifier` through
random rule inserts/withdrawals, tree rebuilds, and full reconstructions,
checking after every step that

* the AP Tree classifies exactly like the linear atom scan;
* atom membership in every live predicate matches the predicate's own
  BDD verdict (the invariant stage 2 relies on);
* behaviors agree with a forwarding simulation straight off the rules.

This subsumes a large family of hand-written update tests: any
interleaving that breaks tree/universe synchronization fails here.
"""

from __future__ import annotations

import random

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.baselines import ForwardingSimulator
from repro.core.classifier import APClassifier
from repro.datasets import internet2_like
from repro.headerspace.fields import parse_ipv4
from repro.network.rules import ForwardingRule, Match


class ClassifierMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.classifier: APClassifier | None = None
        self.installed: list[tuple[str, ForwardingRule]] = []
        self.rng = random.Random(0)

    @initialize()
    def build(self) -> None:
        self.network = internet2_like(prefixes_per_router=1, te_fraction=0.0)
        self.classifier = APClassifier.build(self.network)
        self.simulator = ForwardingSimulator(self.classifier.dataplane)
        self.boxes = sorted(self.network.boxes)

    @rule(
        box_index=st.integers(min_value=0, max_value=8),
        second_octet=st.integers(min_value=1, max_value=12),
        third_octet=st.integers(min_value=0, max_value=255),
        port_index=st.integers(min_value=0, max_value=10),
    )
    def insert_rule(self, box_index, second_octet, third_octet, port_index) -> None:
        box = self.boxes[box_index % len(self.boxes)]
        ports = self.network.box(box).table.out_ports()
        if not ports:
            return
        value = parse_ipv4(f"10.{second_octet}.{third_octet}.0")
        new_rule = ForwardingRule(
            Match.prefix("dst_ip", value, 24),
            (ports[port_index % len(ports)],),
            priority=24,
        )
        self.classifier.insert_rule(box, new_rule)
        self.installed.append((box, new_rule))

    @precondition(lambda self: self.installed)
    @rule(victim=st.integers(min_value=0, max_value=2**31))
    def remove_rule(self, victim) -> None:
        box, installed_rule = self.installed.pop(victim % len(self.installed))
        self.classifier.remove_rule(box, installed_rule)

    @rule()
    def rebuild_tree(self) -> None:
        self.classifier.rebuild_tree()

    @rule()
    def reconstruct(self) -> None:
        self.classifier.reconstruct()

    @invariant()
    def tree_matches_linear_scan(self) -> None:
        if self.classifier is None:
            return
        for _ in range(3):
            header = self.rng.getrandbits(32)
            assert self.classifier.tree.classify(header) == (
                self.classifier.universe.classify(header)
            )

    @invariant()
    def membership_matches_predicates(self) -> None:
        if self.classifier is None:
            return
        header = self.rng.getrandbits(32)
        atom_id = self.classifier.classify(header)
        for labeled in self.classifier.dataplane.predicates():
            assert self.classifier.universe.contains(
                labeled.pid, atom_id
            ) == labeled.fn.evaluate(header)

    @invariant()
    def behavior_matches_forwarding_simulation(self) -> None:
        if self.classifier is None:
            return
        header = self.rng.getrandbits(32)
        ingress = self.rng.choice(self.boxes)
        fast = self.classifier.query(header, ingress)
        slow = self.simulator.query(header, ingress)
        assert sorted(map(tuple, fast.paths())) == sorted(map(tuple, slow.paths()))


ClassifierMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=12, deadline=None
)
TestClassifierStateMachine = ClassifierMachine.TestCase
