"""Unit tests for forwarding tables and ACLs."""

import pytest

from repro.headerspace.fields import dst_ip_layout, parse_ipv4
from repro.headerspace.header import Packet
from repro.network.rules import AclRule, ForwardingRule, Match
from repro.network.tables import Acl, ForwardingTable


def prefix_rule(text: str, plen: int, port: str) -> ForwardingRule:
    return ForwardingRule(
        Match.prefix("dst_ip", parse_ipv4(text), plen), (port,), priority=plen
    )


def packet(text: str) -> Packet:
    return Packet.of(dst_ip_layout(), dst_ip=text)


class TestForwardingTable:
    def test_longest_prefix_wins(self):
        table = ForwardingTable(
            [
                prefix_rule("10.0.0.0", 8, "coarse"),
                prefix_rule("10.1.0.0", 16, "fine"),
            ]
        )
        assert table.lookup(packet("10.1.2.3")) == ("fine",)
        assert table.lookup(packet("10.2.0.0")) == ("coarse",)

    def test_insertion_order_breaks_ties(self):
        table = ForwardingTable()
        table.add(prefix_rule("10.0.0.0", 8, "first"))
        table.add(prefix_rule("10.0.0.0", 8, "second"))
        assert table.lookup(packet("10.5.5.5")) == ("first",)

    def test_no_match_is_drop(self):
        table = ForwardingTable([prefix_rule("10.0.0.0", 8, "p")])
        assert table.lookup(packet("11.0.0.0")) == ()

    def test_remove(self):
        rule = prefix_rule("10.0.0.0", 8, "p")
        table = ForwardingTable([rule])
        table.remove(rule)
        assert table.lookup(packet("10.0.0.1")) == ()

    def test_remove_missing_raises(self):
        table = ForwardingTable()
        with pytest.raises(KeyError):
            table.remove(prefix_rule("10.0.0.0", 8, "p"))

    def test_version_bumps_on_mutation(self):
        table = ForwardingTable()
        v0 = table.version
        rule = prefix_rule("10.0.0.0", 8, "p")
        table.add(rule)
        assert table.version > v0
        v1 = table.version
        table.remove(rule)
        assert table.version > v1

    def test_out_ports_first_seen_order(self):
        table = ForwardingTable(
            [
                prefix_rule("10.1.0.0", 16, "b"),
                prefix_rule("10.0.0.0", 8, "a"),
                prefix_rule("10.2.0.0", 16, "b"),
            ]
        )
        assert table.out_ports() == ["b", "a"]

    def test_iteration_in_priority_order(self):
        table = ForwardingTable(
            [
                prefix_rule("10.0.0.0", 8, "low"),
                prefix_rule("10.1.0.0", 16, "high"),
            ]
        )
        priorities = [rule.priority for rule in table]
        assert priorities == sorted(priorities, reverse=True)

    def test_multicast_lookup(self):
        table = ForwardingTable(
            [ForwardingRule(Match.any(), ("p1", "p2"), priority=0)]
        )
        assert table.lookup(packet("1.2.3.4")) == ("p1", "p2")

    def test_len_and_repr(self):
        table = ForwardingTable([prefix_rule("10.0.0.0", 8, "p")])
        assert len(table) == 1
        assert "1 rules" in repr(table)


class TestAcl:
    def test_first_match_semantics(self):
        acl = Acl(
            [
                AclRule(Match.prefix("dst_ip", parse_ipv4("10.1.0.0"), 16), permit=False),
                AclRule(Match.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8), permit=True),
            ]
        )
        assert not acl.permits(packet("10.1.0.1"))  # deny wins: listed first
        assert acl.permits(packet("10.2.0.1"))

    def test_default_deny(self):
        acl = Acl([])
        assert not acl.permits(packet("10.0.0.1"))

    def test_default_permit(self):
        acl = Acl([], default_permit=True)
        assert acl.permits(packet("10.0.0.1"))

    def test_append_and_remove(self):
        rule = AclRule(Match.any(), permit=True)
        acl = Acl()
        acl.append(rule)
        assert acl.permits(packet("10.0.0.1"))
        acl.remove(rule)
        assert not acl.permits(packet("10.0.0.1"))

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            Acl().remove(AclRule(Match.any(), permit=True))

    def test_version_bumps(self):
        acl = Acl()
        v0 = acl.version
        acl.append(AclRule(Match.any(), permit=True))
        assert acl.version > v0

    def test_repr_mentions_default(self):
        assert "default=deny" in repr(Acl())
        assert "default=permit" in repr(Acl(default_permit=True))
