"""Tests for timeline summaries and middlebox chains and tree explain."""

from __future__ import annotations

import random

import pytest

from repro.analysis.timeline import summarize_timeline
from repro.core.reconstruction import ThroughputSample


def sample(t: float, qps: float, event: str = "") -> ThroughputSample:
    return ThroughputSample(time_s=t, throughput_qps=qps, event=event)


class TestTimelineSummary:
    def test_basic_aggregates(self):
        samples = [sample(0.1, 100), sample(0.2, 200), sample(0.3, 300)]
        summary = summarize_timeline(samples)
        assert summary.samples == 3
        assert summary.mean_qps == pytest.approx(200)
        assert summary.min_qps == 100
        assert summary.max_qps == 300
        assert summary.degradation == pytest.approx(0.5)

    def test_swap_recovery(self):
        samples = [
            sample(0.1, 100),
            sample(0.2, 90),
            sample(0.3, 80),
            sample(0.4, 80, event="swap"),
            sample(0.5, 150),
            sample(0.6, 160),
            sample(0.7, 155),
        ]
        summary = summarize_timeline(samples, window=3)
        assert len(summary.swaps) == 1
        swap = summary.swaps[0]
        assert swap.before_qps == pytest.approx(90)
        assert swap.after_qps == pytest.approx(155)
        assert swap.gain > 1.5
        assert "x" in summary.describe()

    def test_swap_at_edges_ignored(self):
        samples = [sample(0.1, 100, event="swap"), sample(0.2, 100)]
        summary = summarize_timeline(samples)
        assert summary.swaps == ()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_timeline([])

    def test_real_simulation_summary(self):
        from repro.core.reconstruction import DynamicSimulation
        from repro.datasets import internet2_like
        from repro.network.dataplane import DataPlane

        pool = DataPlane(internet2_like(prefixes_per_router=2)).predicates()
        simulation = DynamicSimulation(
            pool,
            initial_count=min(20, len(pool)),
            rng=random.Random(1),
            cost_samples=30,
            bucket_s=0.1,
        )
        timeline = simulation.run(duration_s=0.6, update_rate_per_s=60)
        summary = summarize_timeline(timeline)
        assert summary.mean_qps > 0
        assert 0 < summary.degradation <= 1.0


class TestExplain:
    def test_explain_trace_matches_depth(self, internet2_classifier):
        rng = random.Random(0)
        tree = internet2_classifier.tree
        for _ in range(20):
            header = rng.getrandbits(32)
            trace = tree.explain(header)
            atom_id, depth = tree.classify_with_depth(header)
            assert len(trace) == depth
            # Every traced verdict matches the predicate's own BDD.
            for pid, verdict in trace:
                fn = internet2_classifier.universe.predicate_fn(pid)
                assert fn.evaluate(header) == verdict


class TestMiddleboxChains:
    def test_chain_applies_in_order(self):
        from repro.core.classifier import APClassifier
        from repro.core.middlebox import (
            DETERMINISTIC,
            FlowEntry,
            HeaderRewrite,
            Middlebox,
            MiddleboxAwareComputer,
            MiddleboxTable,
            RewriteBranch,
        )
        from repro.datasets import toy_network
        from repro.headerspace.fields import parse_ipv4

        network = toy_network()
        classifier = APClassifier.build(network)
        full = (1 << 32) - 1

        start = parse_ipv4("10.2.0.9")
        middle = parse_ipv4("10.1.0.9")
        final = parse_ipv4("10.3.0.9")
        atom_start = classifier.classify(start)
        atom_middle = classifier.classify(middle)
        atom_final = classifier.classify(final)

        first = Middlebox(
            "first",
            MiddleboxTable(
                [
                    FlowEntry(
                        frozenset({atom_start}),
                        DETERMINISTIC,
                        (RewriteBranch(HeaderRewrite(full, middle), 1.0, atom_middle),),
                    )
                ]
            ),
        )
        second = Middlebox(
            "second",
            MiddleboxTable(
                [
                    FlowEntry(
                        frozenset({atom_middle}),
                        DETERMINISTIC,
                        (RewriteBranch(HeaderRewrite(full, final), 1.0, atom_final),),
                    )
                ]
            ),
        )
        computer = MiddleboxAwareComputer(classifier, {"b2": [first, second]})
        (outcome,) = computer.query(start, "b1")
        # After both rewrites the packet is 10.3.0.9 -> delivered to h2
        # because it is inside p3.
        assert outcome.behavior.delivered_hosts() == {"h2"}
        assert outcome.probability == pytest.approx(1.0)

    def test_single_middlebox_still_accepted(self):
        from repro.core.classifier import APClassifier
        from repro.core.middlebox import Middlebox, MiddleboxAwareComputer, MiddleboxTable
        from repro.datasets import toy_network

        classifier = APClassifier.build(toy_network())
        computer = MiddleboxAwareComputer(
            classifier, {"b2": Middlebox("solo", MiddleboxTable())}
        )
        assert computer.middleboxes["b2"][0].name == "solo"
