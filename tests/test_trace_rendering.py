"""Tests for human-readable renderings: format_trace and describe_atom."""

from __future__ import annotations

import random

import pytest

from repro.core.classifier import APClassifier
from repro.core.verifier import NetworkVerifier
from repro.datasets import stanford_like, toy_network
from repro.headerspace.fields import parse_ipv4
from repro.headerspace.header import Packet


class TestFormatTrace:
    def test_delivery_trace(self):
        classifier = APClassifier.build(toy_network())
        behavior = classifier.query(
            Packet.of(classifier.dataplane.layout, dst_ip="10.2.0.1"), "b1"
        )
        text = behavior.format_trace()
        lines = text.splitlines()
        assert lines[0].startswith("b1 (in: None)")
        assert any("=> host h2" in line for line in lines)
        # Indentation deepens along the path.
        assert any(line.startswith("    ") for line in lines)

    def test_drop_trace(self):
        classifier = APClassifier.build(toy_network())
        behavior = classifier.query(
            Packet.of(classifier.dataplane.layout, dst_ip="99.0.0.1"), "b1"
        )
        assert "[dropped: no_route]" in behavior.format_trace()

    def test_loop_trace(self):
        from repro.headerspace.fields import dst_ip_layout
        from repro.network.builder import Network
        from repro.network.rules import Match

        network = Network(dst_ip_layout(), name="loop")
        network.add_box("a")
        network.add_box("b")
        network.link("a", "to_b", "b", "from_a")
        network.link("b", "to_a", "a", "from_b")
        match = Match.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8)
        network.add_forwarding_rule("a", match, "to_b", 8)
        network.add_forwarding_rule("b", match, "to_a", 8)
        classifier = APClassifier.build(network)
        behavior = classifier.query(parse_ipv4("10.1.1.1"), "a")
        assert "[stopped: loop]" in behavior.format_trace()

    def test_custom_indent(self):
        classifier = APClassifier.build(toy_network())
        behavior = classifier.query(
            Packet.of(classifier.dataplane.layout, dst_ip="10.1.0.1"), "b1"
        )
        text = behavior.format_trace(indent="\t")
        assert "\t" in text


class TestDescribeAtomMultiField:
    def test_five_tuple_description(self):
        classifier = APClassifier.build(
            stanford_like(subnets_per_zone=2, host_ports_per_zone=1)
        )
        verifier = NetworkVerifier.from_classifier(classifier)
        rng = random.Random(0)
        atom_ids = sorted(classifier.universe.atom_ids())
        for atom_id in rng.sample(atom_ids, 5):
            text = verifier.describe_atom(atom_id)
            assert text.startswith(f"a{atom_id}:")
            # Multi-field atoms mention at least one named field or 'any'.
            assert any(
                token in text
                for token in ("dst_ip", "src_ip", "dst_port", "proto", "any")
            )

    def test_cube_limit(self):
        classifier = APClassifier.build(toy_network())
        verifier = NetworkVerifier.from_classifier(classifier)
        # The all-drop remainder class has several cubes; limiting to one
        # must append an ellipsis.
        widest = max(
            classifier.universe.atom_ids(),
            key=lambda a: classifier.universe.atom_fn(a).sat_count(),
        )
        text = verifier.describe_atom(widest, max_cubes=1)
        assert "..." in text


class TestSimulationValidation:
    def test_interval_smaller_than_bucket_rejected(self):
        from repro.core.reconstruction import DynamicSimulation
        from repro.datasets import internet2_like
        from repro.network.dataplane import DataPlane

        pool = DataPlane(internet2_like(prefixes_per_router=1)).predicates()
        with pytest.raises(ValueError):
            DynamicSimulation(
                pool,
                initial_count=5,
                reconstruct_interval_s=0.01,
                bucket_s=0.05,
            )
