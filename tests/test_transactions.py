"""Tests for verify-then-commit update transactions."""

from __future__ import annotations

import random

import pytest

from repro.core.classifier import APClassifier
from repro.core.transactions import UpdateTransaction, VerificationFailed
from repro.core.verifier import NetworkVerifier
from repro.datasets import internet2_like
from repro.headerspace.fields import parse_ipv4
from repro.network.rules import ForwardingRule, Match


@pytest.fixture()
def clf() -> APClassifier:
    return APClassifier.build(internet2_like(prefixes_per_router=2))


def snapshot_paths(classifier: APClassifier, headers, ingress: str):
    return {
        header: sorted(map(tuple, classifier.query(header, ingress).paths()))
        for header in headers
    }


def probe_headers(classifier: APClassifier, count: int = 15):
    rng = random.Random(0)
    atoms = sorted(classifier.universe.atom_ids())
    return [
        classifier.universe.atom_fn(rng.choice(atoms)).random_sat(rng)
        for _ in range(count)
    ]


def detour_rule() -> ForwardingRule:
    return ForwardingRule(
        Match.prefix("dst_ip", parse_ipv4("10.1.0.0"), 24), ("to_SALT",), 24
    )


class TestCommit:
    def test_commit_keeps_changes(self, clf):
        rule = detour_rule()
        with clf.transaction() as txn:
            txn.insert_rule("SEAT", rule)
        # Committed: the rule is live.
        assert rule in list(clf.dataplane.network.box("SEAT").table)

    def test_pending_operations_counted(self, clf):
        txn = clf.transaction()
        txn.insert_rule("SEAT", detour_rule())
        assert txn.pending_operations == 1
        txn.commit()
        assert txn.pending_operations == 0


class TestRollback:
    def test_rollback_restores_behavior_exactly(self, clf):
        headers = probe_headers(clf)
        before = snapshot_paths(clf, headers, "SEAT")
        txn = clf.transaction()
        txn.insert_rule("SEAT", detour_rule())
        txn.remove_rule("SEAT", detour_rule())
        txn.insert_rule("CHIC", detour_rule())
        txn.rollback()
        assert snapshot_paths(clf, headers, "SEAT") == before
        assert snapshot_paths(clf, headers, "CHIC") == snapshot_paths(
            clf, headers, "CHIC"
        )

    def test_exception_rolls_back(self, clf):
        headers = probe_headers(clf)
        before = snapshot_paths(clf, headers, "SEAT")
        with pytest.raises(RuntimeError, match="boom"):
            with clf.transaction() as txn:
                txn.insert_rule("SEAT", detour_rule())
                raise RuntimeError("boom")
        assert snapshot_paths(clf, headers, "SEAT") == before

    def test_failed_verification_rolls_back(self, clf):
        headers = probe_headers(clf)
        before = snapshot_paths(clf, headers, "SEAT")
        blackhole = ForwardingRule(Match.any(), ("dead",), priority=32)
        with pytest.raises(VerificationFailed):
            with clf.transaction() as txn:
                txn.insert_rule("SEAT", blackhole)
                txn.ensure(
                    lambda c: not NetworkVerifier.from_classifier(c)
                    .find_blackholes("SEAT"),
                    "no blackholes allowed",
                )
        assert snapshot_paths(clf, headers, "SEAT") == before


class TestVerification:
    def test_passing_check_commits(self, clf):
        rule = detour_rule()
        with clf.transaction() as txn:
            txn.insert_rule("SEAT", rule)
            txn.ensure(
                lambda c: not NetworkVerifier.from_classifier(c).find_loops("SEAT")
            )
        assert rule in list(clf.dataplane.network.box("SEAT").table)

    def test_check_sees_staged_state(self, clf):
        rule = detour_rule()
        observed = {}

        def check(classifier) -> bool:
            observed["rules"] = len(classifier.dataplane.network.box("SEAT").table)
            return True

        baseline = len(clf.dataplane.network.box("SEAT").table)
        with clf.transaction() as txn:
            txn.insert_rule("SEAT", rule)
            txn.ensure(check)
        assert observed["rules"] == baseline + 1


class TestLifecycle:
    def test_closed_transaction_rejects_operations(self, clf):
        txn = clf.transaction()
        txn.commit()
        with pytest.raises(RuntimeError):
            txn.insert_rule("SEAT", detour_rule())
        with pytest.raises(RuntimeError):
            txn.rollback()

    def test_manual_rollback_then_exit_is_clean(self, clf):
        with clf.transaction() as txn:
            txn.insert_rule("SEAT", detour_rule())
            txn.rollback()
        # __exit__ must not double-rollback a closed transaction.

    def test_transaction_type(self, clf):
        assert isinstance(clf.transaction(), UpdateTransaction)
