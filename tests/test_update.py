"""Real-time update tests (Section VI-A): correctness must survive any
sequence of predicate additions and deletions."""

from __future__ import annotations

import random

import pytest

from repro.core.atomic import AtomicUniverse
from repro.core.classifier import APClassifier
from repro.core.construction import build_oapt
from repro.core.update import UpdateEngine
from repro.core.weights import VisitCounter
from repro.datasets import internet2_like, rule_update_stream
from repro.network.dataplane import DataPlane, PredicateChange


def fresh_classifier() -> APClassifier:
    return APClassifier.build(internet2_like(prefixes_per_router=2))


class TestEngineBasics:
    def test_add_predicate_keeps_classification_exact(self):
        clf = fresh_classifier()
        rng = random.Random(1)
        # Borrow an unrelated predicate function by perturbing an atom.
        atoms = sorted(clf.universe.atom_ids())
        new_fn = clf.universe.atom_fn(atoms[0]) | clf.universe.atom_fn(atoms[-1])
        engine = UpdateEngine(clf.universe, clf.tree)
        engine.add_predicate(
            type(clf.dataplane.predicates()[0])(
                pid=10_000, kind="forward", box="x", port="p", fn=new_fn
            )
        )
        for _ in range(50):
            header = rng.getrandbits(32)
            assert clf.tree.classify(header) == clf.universe.classify(header)

    def test_update_result_accounting(self):
        clf = fresh_classifier()
        rule_stream = rule_update_stream(
            clf.dataplane.network, 5, random.Random(2), insert_fraction=1.0
        )
        results = []
        for update in rule_stream:
            results.extend(clf.insert_rule(update.box, update.rule))
        assert all(result.elapsed_s >= 0 for result in results)
        assert any(
            result.added_pid is not None or result.removed_pid is not None
            for result in results
        )

    def test_counter_carries_weights_across_splits(self):
        clf = APClassifier.build(
            internet2_like(prefixes_per_router=2), count_visits=True
        )
        counter = clf.counter
        assert isinstance(counter, VisitCounter)
        atoms = sorted(clf.universe.atom_ids())
        counter.record(atoms[0], 100)
        # Split that atom via a new predicate cutting it.
        atom_fn = clf.universe.atom_fn(atoms[0])
        rng = random.Random(3)
        member = atom_fn.random_sat(rng)
        from repro.bdd import Function

        cutter = Function.cube(
            clf.dataplane.manager,
            {i: bool((member >> (31 - i)) & 1) for i in range(8)},
        )
        engine = UpdateEngine(clf.universe, clf.tree, counter)
        engine.add_predicate(
            type(clf.dataplane.predicates()[0])(
                pid=10_001, kind="forward", box="x", port="p", fn=cutter
            )
        )
        assert counter.total == 100  # conserved


class TestRuleLevelUpdates:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_mixed_stream_stays_consistent(self, seed):
        clf = fresh_classifier()
        rng = random.Random(seed)
        for update in rule_update_stream(clf.dataplane.network, 30, rng):
            if update.kind == "insert":
                clf.insert_rule(update.box, update.rule)
            else:
                clf.remove_rule(update.box, update.rule)
        # Tree and universe agree with a from-scratch recomputation.
        reference = AtomicUniverse.compute(
            clf.dataplane.manager, clf.dataplane.predicates()
        )
        for _ in range(80):
            header = rng.getrandbits(32)
            live_atom = clf.tree.classify(header)
            ref_atom = reference.classify(header)
            for labeled in clf.dataplane.predicates():
                assert clf.universe.contains(labeled.pid, live_atom) == (
                    reference.contains(labeled.pid, ref_atom)
                )

    def test_updates_since_rebuild_counter(self):
        clf = fresh_classifier()
        rng = random.Random(4)
        stream = rule_update_stream(
            clf.dataplane.network, 10, rng, insert_fraction=1.0
        )
        applied = 0
        for update in stream:
            applied += len(clf.insert_rule(update.box, update.rule))
        assert clf.updates_since_rebuild == applied
        clf.reconstruct()
        assert clf.updates_since_rebuild == 0


class TestTombstones:
    def test_deleted_predicate_still_evaluated_in_tree(self):
        clf = fresh_classifier()
        root_pid = clf.tree.root.pid
        assert root_pid is not None
        labeled = clf.dataplane.predicate(root_pid)
        # Remove every rule feeding that port predicate via the dataplane
        # would be complex; tombstone directly through the engine instead.
        engine = UpdateEngine(clf.universe, clf.tree)
        engine.remove_predicate(root_pid)
        assert not clf.universe.has_predicate(root_pid)
        # The tree still uses the predicate for routing queries -- and
        # classification remains a valid (finer) partition.
        rng = random.Random(5)
        for _ in range(30):
            header = rng.getrandbits(32)
            atom_id = clf.tree.classify(header)
            assert clf.universe.atom_fn(atom_id).evaluate(header)
        assert labeled.fn.evaluate is not None  # predicate object intact

    def test_reconstruction_sheds_fragmentation(self):
        clf = fresh_classifier()
        rng = random.Random(6)
        for update in rule_update_stream(clf.dataplane.network, 40, rng):
            if update.kind == "insert":
                clf.insert_rule(update.box, update.rule)
            else:
                clf.remove_rule(update.box, update.rule)
        fragmented = clf.universe.atom_count
        clf.reconstruct()
        assert clf.universe.atom_count <= fragmented
        # Rebuilt tree is optimized: not worse than continuing the old one.
        rebuilt_depth = clf.tree.average_depth()
        assert rebuilt_depth <= build_oapt(clf.universe).average_depth() * 1.01


class TestApplyChanges:
    def test_apply_change_roundtrip(self):
        clf = fresh_classifier()
        dp: DataPlane = clf.dataplane
        from repro.headerspace.fields import parse_ipv4
        from repro.network.rules import ForwardingRule, Match

        rule = ForwardingRule(
            Match.prefix("dst_ip", parse_ipv4("10.77.0.0"), 24),
            ("to_SALT",),
            priority=24,
        )
        results = clf.insert_rule("SEAT", rule)
        assert clf.universe.verify_partition()
        results += clf.remove_rule("SEAT", rule)
        assert clf.universe.verify_partition()
        assert len(results) >= 2

    def test_change_without_content_rejected(self):
        with pytest.raises(ValueError):
            PredicateChange(removed=None, added=None)
