"""Tests for the network-wide invariant verifier."""

from __future__ import annotations

import pytest

from repro.core.classifier import APClassifier
from repro.core.verifier import NetworkVerifier
from repro.datasets import toy_network
from repro.headerspace.fields import dst_ip_layout, parse_ipv4
from repro.network.builder import Network
from repro.network.rules import AclRule, Match


@pytest.fixture()
def toy_verifier():
    classifier = APClassifier.build(toy_network())
    return classifier, NetworkVerifier.from_classifier(classifier)


class TestReachability:
    def test_atoms_reaching_host(self, toy_verifier):
        classifier, verifier = toy_verifier
        to_h2_from_b1 = verifier.atoms_reaching_host("b1", "h2")
        # Exactly the 10.2.0.0/17 class reaches h2 from b1.
        atom = classifier.classify(parse_ipv4("10.2.0.1"))
        assert to_h2_from_b1 == {atom}
        # From b2, both 10.2.0.0/17-ish classes and 10.3/16 reach h2.
        to_h2_from_b2 = verifier.atoms_reaching_host("b2", "h2")
        assert atom in to_h2_from_b2
        assert len(to_h2_from_b2) > len(to_h2_from_b1)

    def test_atoms_traversing(self, toy_verifier):
        classifier, verifier = toy_verifier
        through_b2 = verifier.atoms_traversing("b1", "b2")
        atom = classifier.classify(parse_ipv4("10.2.0.1"))
        assert atom in through_b2

    def test_reachability_matrix_shape(self, toy_verifier):
        _, verifier = toy_verifier
        matrix = verifier.reachability_matrix()
        assert set(matrix) == {
            (box, host) for box in ("b1", "b2") for host in ("h1", "h2")
        }
        assert matrix[("b2", "h1")] == frozenset()  # b2 cannot reach h1


class TestInvariants:
    def test_no_loops_in_toy(self, toy_verifier):
        _, verifier = toy_verifier
        assert verifier.find_loops("b1") == frozenset()

    def test_loop_detection(self):
        network = Network(dst_ip_layout(), name="looped")
        for name in ("a", "b"):
            network.add_box(name)
        network.link("a", "to_b", "b", "from_a")
        network.link("b", "to_a", "a", "from_b")
        match = Match.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8)
        network.add_forwarding_rule("a", match, "to_b", 8)
        network.add_forwarding_rule("b", match, "to_a", 8)
        classifier = APClassifier.build(network)
        verifier = NetworkVerifier.from_classifier(classifier)
        loops = verifier.find_loops("a")
        assert loops
        looping_atom = classifier.classify(parse_ipv4("10.1.1.1"))
        assert looping_atom in loops

    def test_blackholes(self, toy_verifier):
        classifier, verifier = toy_verifier
        blackholes = verifier.find_blackholes("b2")
        # From b2 the only deliverable classes are inside p3; everything
        # else is a blackhole there.
        assert blackholes
        deliverable = verifier.atoms_reaching_host("b2", "h2")
        assert blackholes == classifier.universe.atom_ids() - deliverable


class TestWaypoint:
    def build_chain(self, bypass: bool) -> APClassifier:
        network = Network(dst_ip_layout(), name="chain")
        for name in ("edge", "fw", "core"):
            network.add_box(name)
        network.link("edge", "to_fw", "fw", "from_edge")
        network.link("fw", "to_core", "core", "from_fw")
        network.attach_host("core", "cust", "server")
        match = Match.prefix("dst_ip", parse_ipv4("10.0.0.0"), 8)
        network.add_forwarding_rule("edge", match, "to_fw", 8)
        network.add_forwarding_rule("fw", match, "to_core", 8)
        network.add_forwarding_rule("core", match, "cust", 8)
        if bypass:
            network.link("edge", "direct", "core", "side_door")
            network.add_forwarding_rule(
                "edge",
                Match.prefix("dst_ip", parse_ipv4("10.66.0.0"), 16),
                "direct",
                16,
            )
        return APClassifier.build(network)

    def test_waypoint_holds(self):
        classifier = self.build_chain(bypass=False)
        verifier = NetworkVerifier.from_classifier(classifier)
        assert verifier.verify_waypoint("edge", "server", "fw") == []

    def test_waypoint_violation_found(self):
        classifier = self.build_chain(bypass=True)
        verifier = NetworkVerifier.from_classifier(classifier)
        violations = verifier.verify_waypoint("edge", "server", "fw")
        assert len(violations) == 1
        violation = violations[0]
        assert violation.atom_id == classifier.classify(parse_ipv4("10.66.1.1"))
        assert "fw" not in violation.path
        assert violation.path[-1] == "server"


class TestIsolation:
    def test_isolated_hosts(self, toy_verifier):
        _, verifier = toy_verifier
        assert verifier.verify_isolation("b1", "h1", "h2") == frozenset()

    def test_multicast_breaks_isolation(self):
        network = Network(dst_ip_layout(), name="mcast")
        network.add_box("r")
        network.attach_host("r", "p1", "h1")
        network.attach_host("r", "p2", "h2")
        network.add_forwarding_rule(
            "r",
            Match.prefix("dst_ip", parse_ipv4("224.0.0.0"), 4),
            ("p1", "p2"),
            priority=4,
        )
        classifier = APClassifier.build(network)
        verifier = NetworkVerifier.from_classifier(classifier)
        shared = verifier.verify_isolation("r", "h1", "h2")
        assert shared == {classifier.classify(parse_ipv4("224.1.1.1"))}


class TestCacheAndDescribe:
    def test_cache_invalidate(self, toy_verifier):
        _, verifier = toy_verifier
        verifier.atoms_reaching_host("b1", "h1")
        assert verifier._cache
        verifier.invalidate()
        assert not verifier._cache

    def test_describe_atom(self, toy_verifier):
        classifier, verifier = toy_verifier
        atom = classifier.classify(parse_ipv4("10.1.0.1"))
        text = verifier.describe_atom(atom)
        assert text.startswith(f"a{atom}:")
        assert "dst_ip" in text
