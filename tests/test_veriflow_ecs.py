"""Tests for Veriflow-style equivalence classes -- and through them, the
paper's minimality claim for atomic predicates."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import VeriflowTrie
from repro.core.classifier import APClassifier
from repro.datasets import internet2_like, random_network, toy_network


class TestBoundaries:
    def test_toy_boundaries(self):
        trie = VeriflowTrie(toy_network())
        boundaries = trie.field_boundaries()["dst_ip"]
        assert boundaries[0] == 0 and boundaries[-1] == 1 << 32
        # 10.1.0.0/16 must contribute its start as a cut point.
        from repro.headerspace.fields import parse_ipv4

        assert parse_ipv4("10.1.0.0") in boundaries

    def test_acls_contribute_cuts(self, stanford_net):
        trie = VeriflowTrie(stanford_net)
        boundaries = trie.field_boundaries()
        # Stanford-like ACLs constrain src_ip and dst_port.
        assert len(boundaries["src_ip"]) > 2 or len(boundaries["dst_port"]) > 2


class TestEquivalenceClasses:
    def test_same_cell_same_behavior(self):
        """Packets in one Veriflow cell must behave identically -- the
        cells refine the behavioral partition."""
        network = toy_network()
        classifier = APClassifier.build(network)
        trie = VeriflowTrie(network)
        rng = random.Random(1)
        cell_to_atom: dict[tuple[int, ...], int] = {}
        for _ in range(300):
            header = rng.getrandbits(32)
            cell = trie.equivalence_class_of(header)
            atom = classifier.classify(header)
            if cell in cell_to_atom:
                assert cell_to_atom[cell] == atom
            else:
                cell_to_atom[cell] = atom

    def test_atoms_are_minimal_vs_veriflow(self, internet2_classifier):
        """The paper's headline property: atomic predicates are the
        *minimum* set of classes, so Veriflow's per-dimension grid can
        only be coarser-grained in count terms (>= atoms)."""
        trie = VeriflowTrie(internet2_classifier.dataplane.network)
        assert (
            trie.equivalence_class_count()
            >= internet2_classifier.universe.atom_count
        )

    @given(seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=12, deadline=None)
    def test_minimality_on_random_networks(self, seed):
        network = random_network(boxes=4, prefixes=5, seed=seed)
        classifier = APClassifier.build(network)
        trie = VeriflowTrie(network)
        assert trie.equivalence_class_count() >= classifier.universe.atom_count
        # And cell-consistency on a few packets.
        rng = random.Random(seed)
        cell_to_atom: dict[tuple[int, ...], int] = {}
        for _ in range(60):
            header = rng.getrandbits(32)
            cell = trie.equivalence_class_of(header)
            atom = classifier.classify(header)
            assert cell_to_atom.setdefault(cell, atom) == atom


class TestCellLookup:
    def test_cell_is_stable(self):
        trie = VeriflowTrie(toy_network())
        from repro.headerspace.fields import parse_ipv4

        a = trie.equivalence_class_of(parse_ipv4("10.1.0.1"))
        b = trie.equivalence_class_of(parse_ipv4("10.1.0.200"))
        c = trie.equivalence_class_of(parse_ipv4("10.3.0.1"))
        assert a == b
        assert a != c

    def test_cell_shape_matches_layout(self, stanford_net):
        trie = VeriflowTrie(stanford_net)
        cell = trie.equivalence_class_of(0)
        assert len(cell) == len(stanford_net.layout.fields)
