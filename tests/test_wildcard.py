"""Unit and property tests for the ternary wildcard algebra."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.headerspace.wildcard import Wildcard, WildcardSet

WIDTH = 6


def truth(wildcard: Wildcard) -> set[int]:
    return {h for h in range(1 << wildcard.width) if wildcard.matches(h)}


def set_truth(ws: WildcardSet) -> set[int]:
    return {h for h in range(1 << ws.width) if ws.matches(h)}


wildcards = st.builds(
    lambda mask, value: Wildcard(WIDTH, mask, value & mask),
    st.integers(min_value=0, max_value=(1 << WIDTH) - 1),
    st.integers(min_value=0, max_value=(1 << WIDTH) - 1),
)


class TestConstruction:
    def test_any_matches_everything(self):
        assert truth(Wildcard.any(4)) == set(range(16))

    def test_exact_matches_one(self):
        assert truth(Wildcard.exact(4, 0b1010)) == {0b1010}

    def test_from_string_round_trip(self):
        for text in ("10*1", "****", "0000", "1*0*"):
            assert str(Wildcard.from_string(text)) == text

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            Wildcard.from_string("10a1")

    def test_value_outside_mask_rejected(self):
        with pytest.raises(ValueError):
            Wildcard(4, 0b0001, 0b0010)

    def test_mask_outside_width_rejected(self):
        with pytest.raises(ValueError):
            Wildcard(4, 0b10000, 0)

    def test_from_prefix(self):
        # 8-bit header: field of width 4 at offset 4, prefix 2 of value 0b1100.
        wildcard = Wildcard.from_prefix(8, 4, 4, 0b1100, 2)
        assert str(wildcard) == "****11**"

    def test_from_prefix_bounds(self):
        with pytest.raises(ValueError):
            Wildcard.from_prefix(8, 0, 4, 0, 5)

    def test_count(self):
        assert Wildcard.from_string("1**0").count() == 4
        assert Wildcard.exact(4, 3).count() == 1


class TestAlgebraUnit:
    def test_intersect_disjoint_is_none(self):
        a = Wildcard.from_string("1***")
        b = Wildcard.from_string("0***")
        assert a.intersect(b) is None

    def test_intersect_narrows(self):
        a = Wildcard.from_string("1***")
        b = Wildcard.from_string("**00")
        assert str(a.intersect(b)) == "1*00"

    def test_subset(self):
        assert Wildcard.from_string("10*1").is_subset(Wildcard.from_string("1**1"))
        assert not Wildcard.from_string("1**1").is_subset(Wildcard.from_string("10*1"))

    def test_subtract_disjoint_returns_self(self):
        a = Wildcard.from_string("1***")
        b = Wildcard.from_string("0***")
        assert a.subtract(b) == [a]

    def test_subtract_superset_is_empty(self):
        a = Wildcard.from_string("10**")
        b = Wildcard.from_string("1***")
        assert a.subtract(b) == []

    def test_rewrite_forces_bits(self):
        a = Wildcard.from_string("1***")
        rewritten = a.rewrite(0b0110, 0b0100)
        assert str(rewritten) == "110*"

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Wildcard.any(4).intersect(Wildcard.any(5))

    def test_sample_matches(self):
        rng = random.Random(3)
        wildcard = Wildcard.from_string("1*0*1*")
        for _ in range(30):
            assert wildcard.matches(wildcard.sample(rng))


@given(wildcards, wildcards)
@settings(max_examples=200)
def test_intersect_is_set_intersection(a, b):
    overlap = a.intersect(b)
    expected = truth(a) & truth(b)
    assert (set() if overlap is None else truth(overlap)) == expected


@given(wildcards, wildcards)
@settings(max_examples=200)
def test_subtract_is_set_difference(a, b):
    pieces = a.subtract(b)
    expected = truth(a) - truth(b)
    covered: set[int] = set()
    for piece in pieces:
        members = truth(piece)
        assert not members & covered, "subtract pieces overlap"
        covered |= members
    assert covered == expected


@given(wildcards, wildcards)
@settings(max_examples=200)
def test_subset_matches_set_inclusion(a, b):
    assert a.is_subset(b) == (truth(a) <= truth(b))


@given(st.lists(wildcards, max_size=5), wildcards)
@settings(max_examples=100)
def test_wildcard_set_operations(members, probe):
    ws = WildcardSet(WIDTH, members)
    expected = set().union(*(truth(m) for m in members)) if members else set()
    assert set_truth(ws) == expected
    assert set_truth(ws.intersect_wildcard(probe)) == expected & truth(probe)
    assert set_truth(ws.subtract_wildcard(probe)) == expected - truth(probe)


class TestWildcardSet:
    def test_absorption_keeps_sets_small(self):
        ws = WildcardSet(4)
        ws.add(Wildcard.from_string("10**"))
        ws.add(Wildcard.from_string("1***"))  # absorbs the first
        ws.add(Wildcard.from_string("100*"))  # absorbed by the second
        assert len(ws) == 1

    def test_full_and_empty(self):
        assert set_truth(WildcardSet.full(4)) == set(range(16))
        assert WildcardSet.empty(4).is_empty

    def test_union(self):
        a = WildcardSet(4, [Wildcard.from_string("1***")])
        b = WildcardSet(4, [Wildcard.from_string("0***")])
        assert set_truth(a.union(b)) == set(range(16))

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            WildcardSet(4).add(Wildcard.any(5))

    def test_repr_truncates(self):
        ws = WildcardSet(4, [Wildcard.exact(4, v) for v in range(6)])
        assert "total" in repr(ws)
